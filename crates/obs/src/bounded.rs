//! A non-blocking, bounded-queue event sink with a background flusher.
//!
//! The serving pool shares one trace sink across every worker thread; a
//! blocking writer there (e.g. [`crate::JsonlSink`] over a slow disk)
//! would serialize the very workload the trace is supposed to observe.
//! [`BoundedSink`] decouples the two: `emit` enqueues into a bounded
//! in-memory queue under a short-held lock and returns immediately, while
//! a dedicated flusher thread drains the queue into the inner sink.
//!
//! The default overflow policy is **drop-newest and count** — production
//! telemetry discipline: when the queue is full the incoming event is
//! discarded and `obs.dropped_events` is incremented, so the emitting
//! thread never waits for I/O and every missing trace line is accounted
//! for (`emitted = written + dropped + sampled` holds exactly once the
//! sink is closed).  [`OverflowPolicy::DropOldest`] keeps the *newest*
//! events instead: a full queue evicts its head to admit the incoming
//! event, so the tail of the stream — usually the interesting part of an
//! incident trace — survives, under the same exact ledger (the evicted
//! event is the one counted dropped).  Optional 1-in-N sampling per event name thins
//! high-frequency streams (e.g. keep every 8th `exec.step`) before they
//! reach the queue; sampled-out events are counted separately under
//! `obs.sampled_events`, never silently lost.
//!
//! [`BoundedSink::close`] (also invoked on drop) marks the queue closed,
//! joins the flusher, and guarantees every queued event has reached the
//! inner sink — conclusive shutdown, no tail loss.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::event::{Event, EventSink};
use crate::metrics::{Counter, MetricsRegistry};

/// Default queue capacity: deep enough to absorb bursts from a full
/// worker pool, small enough that a stalled writer bounds memory.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4096;

/// Cumulative accounting of one [`BoundedSink`]'s lifetime.
///
/// After [`BoundedSink::close`] the identity
/// `emitted == written + dropped + sampled` holds exactly; while the
/// flusher is still running, `written` lags `emitted` by the queue depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedSinkStats {
    /// Events handed to [`EventSink::emit`].
    pub emitted: u64,
    /// Events delivered to the inner sink by the flusher.
    pub written: u64,
    /// Events discarded because the queue was full (or the sink closed).
    pub dropped: u64,
    /// Events thinned out by per-name 1-in-N sampling.
    pub sampled: u64,
}

/// What [`BoundedSink::emit`] does when the queue is at capacity.  Either
/// way exactly one event is discarded and counted dropped, so the ledger
/// `emitted == written + dropped + sampled` stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Discard the incoming event (the default): the queued prefix of the
    /// stream is preserved intact.
    #[default]
    DropNewest,
    /// Evict the oldest queued event to admit the incoming one: the tail
    /// of the stream is preserved — what you want when the trace exists
    /// to explain how a run *ended*.
    DropOldest,
}

/// Adaptive-sampling factors are capped so even a pathological overload
/// keeps at least one in 256 events of every name.
pub const MAX_ADAPTIVE_FACTOR: u64 = 256;

/// Feedback state for adaptive sampling. Lives *inside* the queue mutex —
/// the emit path already takes that lock for every admitted event, so
/// adapting adds no locks to the hot path.
struct Adaptive {
    /// Events considered per adaptation window.
    window: u64,
    /// Events considered so far in the current window.
    seen: u64,
    /// `obs.dropped_events` reading at the window start; growth across a
    /// window is the overload signal.
    dropped_at_start: u64,
    /// Per-name event counts this window (to find the heavy hitters).
    counts: BTreeMap<&'static str, u64>,
    /// Per-name dynamic `(factor, tick)`: keep one in `factor`,
    /// admission-ordered by `tick`. Absent name = factor 1 = keep all.
    factors: BTreeMap<&'static str, (u64, u64)>,
}

impl Adaptive {
    /// Considers one event named `name`; returns `true` when the current
    /// dynamic factor thins it out. Runs the window-boundary adaptation:
    /// if `obs.dropped_events` grew over the window, the window's heavy
    /// hitters double their factor (capped); a drop-free window halves
    /// every factor back toward 1.
    fn consider(&mut self, name: &'static str, dropped_now: u64) -> bool {
        self.seen += 1;
        *self.counts.entry(name).or_insert(0) += 1;
        let thinned = match self.factors.get_mut(name) {
            Some((factor, tick)) => {
                let t = *tick;
                *tick += 1;
                t % *factor != 0
            }
            None => false,
        };
        if self.seen >= self.window {
            if dropped_now > self.dropped_at_start {
                // Overloaded: raise sampling on the names that filled the
                // window (at least a quarter of it), sparing rare events.
                let threshold = (self.window / 4).max(1);
                for (&name, &count) in self.counts.iter() {
                    if count >= threshold {
                        let (factor, _) = self.factors.entry(name).or_insert((1, 0));
                        *factor = (*factor * 2).min(MAX_ADAPTIVE_FACTOR);
                    }
                }
            } else {
                // Pressure is off: decay every factor toward keep-all.
                for (factor, _) in self.factors.values_mut() {
                    *factor /= 2;
                }
                self.factors.retain(|_, (factor, _)| *factor > 1);
            }
            self.seen = 0;
            self.counts.clear();
            self.dropped_at_start = dropped_now;
        }
        thinned
    }
}

struct Queue {
    events: VecDeque<Event>,
    closed: bool,
    adaptive: Option<Adaptive>,
}

struct Shared {
    queue: Mutex<Queue>,
    ready: Condvar,
    capacity: usize,
    overflow: OverflowPolicy,
    emitted: Counter,
    written: Counter,
    dropped: Counter,
    sampled: Counter,
    /// Per-name sampling: keep one event in `n`, admission-ordered.
    sampling: BTreeMap<&'static str, (u64, AtomicU64)>,
}

/// Configures and builds a [`BoundedSink`] (the flusher thread starts at
/// [`build`](BoundedSinkBuilder::build), so all knobs must be set first).
#[derive(Default)]
pub struct BoundedSinkBuilder {
    capacity: Option<usize>,
    overflow: OverflowPolicy,
    registry: Option<Arc<MetricsRegistry>>,
    sampling: BTreeMap<&'static str, u64>,
    adaptive_window: Option<u64>,
}

impl BoundedSinkBuilder {
    /// Sets the queue capacity (values below 1 become 1; default
    /// [`DEFAULT_QUEUE_CAPACITY`]).
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// Sets the overflow policy (default [`OverflowPolicy::DropNewest`]).
    pub fn overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Counts `obs.*` accounting into `registry` (shared with other
    /// components) instead of a private one.
    pub fn registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Keeps only one in `n` events named `name` (admission order; `n = 0`
    /// or `1` keeps all). Thinned events count as `sampled`, not
    /// `dropped`.
    pub fn sample_one_in(mut self, name: &'static str, n: u64) -> Self {
        if n > 1 {
            self.sampling.insert(name, n);
        } else {
            self.sampling.remove(name);
        }
        self
    }

    /// Enables feedback-driven sampling: every `window` admitted events
    /// the sink compares `obs.dropped_events` against the window start —
    /// if drops grew, the window's high-frequency event names double
    /// their 1-in-N sampling factor (capped at [`MAX_ADAPTIVE_FACTOR`]);
    /// a drop-free window halves every factor back toward keep-all.
    /// Thinned events count under `obs.sampled_events`, so the exact
    /// ledger `emitted == written + dropped + sampled` is unchanged.
    /// Values below 16 are clamped to 16 (sub-window feedback would
    /// chase noise). Composes with [`sample_one_in`]
    /// (static factors apply first).
    ///
    /// [`sample_one_in`]: BoundedSinkBuilder::sample_one_in
    pub fn adaptive_sampling(mut self, window: u64) -> Self {
        self.adaptive_window = Some(window.max(16));
        self
    }

    /// Builds the sink around `inner` and starts the flusher thread.
    pub fn build(self, inner: Arc<dyn EventSink>) -> BoundedSink {
        let registry = self
            .registry
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                events: VecDeque::new(),
                closed: false,
                adaptive: self.adaptive_window.map(|window| Adaptive {
                    window,
                    seen: 0,
                    dropped_at_start: 0,
                    counts: BTreeMap::new(),
                    factors: BTreeMap::new(),
                }),
            }),
            ready: Condvar::new(),
            capacity: self.capacity.unwrap_or(DEFAULT_QUEUE_CAPACITY),
            overflow: self.overflow,
            emitted: registry.counter("obs.emitted_events"),
            written: registry.counter("obs.written_events"),
            dropped: registry.counter("obs.dropped_events"),
            sampled: registry.counter("obs.sampled_events"),
            sampling: self
                .sampling
                .into_iter()
                .map(|(name, n)| (name, (n, AtomicU64::new(0))))
                .collect(),
        });
        let flusher = {
            let shared = Arc::clone(&shared);
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || flusher_loop(&shared, &*inner))
        };
        BoundedSink {
            shared,
            inner,
            flusher: Mutex::new(Some(flusher)),
            registry,
        }
    }
}

/// The flusher: swap the whole queue out under the lock, deliver it to the
/// inner sink unlocked (so emitters never wait on inner-sink I/O), repeat
/// until closed *and* empty.
fn flusher_loop(shared: &Shared, inner: &dyn EventSink) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("bounded sink lock poisoned");
            while queue.events.is_empty() && !queue.closed {
                queue = shared
                    .ready
                    .wait(queue)
                    .expect("bounded sink lock poisoned");
            }
            if queue.events.is_empty() {
                return; // closed and fully drained: conclusive shutdown
            }
            std::mem::take(&mut queue.events)
        };
        for event in &batch {
            inner.emit(event);
        }
        shared.written.add(batch.len() as u64);
    }
}

/// A bounded, non-blocking [`EventSink`] adapter: `emit` enqueues and
/// returns; a background thread drains to the inner sink; overflow drops
/// the newest event and counts it (`obs.dropped_events`).
///
/// See DESIGN.md §8 for the full overflow and shutdown contract, and
/// [`BoundedSinkBuilder`] for capacity/sampling/registry knobs.
pub struct BoundedSink {
    shared: Arc<Shared>,
    inner: Arc<dyn EventSink>,
    flusher: Mutex<Option<JoinHandle<()>>>,
    registry: Arc<MetricsRegistry>,
}

impl BoundedSink {
    /// Wraps `inner` with default capacity, no sampling, and a private
    /// accounting registry.
    pub fn new(inner: Arc<dyn EventSink>) -> Self {
        Self::builder().build(inner)
    }

    /// A builder for capacity / sampling / shared-registry configuration.
    pub fn builder() -> BoundedSinkBuilder {
        BoundedSinkBuilder::default()
    }

    /// The queue capacity events wait in before overflow drops them.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// The policy applied when the queue is at capacity.
    pub fn overflow(&self) -> OverflowPolicy {
        self.shared.overflow
    }

    /// The registry holding the `obs.*` accounting counters.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The current adaptive 1-in-N factor for events named `name`
    /// (`1` = keep all). Always `1` unless
    /// [`BoundedSinkBuilder::adaptive_sampling`] is enabled and drop
    /// pressure has raised the name's factor.
    pub fn adaptive_factor(&self, name: &str) -> u64 {
        let queue = self
            .shared
            .queue
            .lock()
            .expect("bounded sink lock poisoned");
        queue
            .adaptive
            .as_ref()
            .and_then(|a| a.factors.get(name).map(|(factor, _)| *factor))
            .unwrap_or(1)
    }

    /// Current cumulative accounting (see [`BoundedSinkStats`]).
    pub fn stats(&self) -> BoundedSinkStats {
        BoundedSinkStats {
            emitted: self.shared.emitted.get(),
            written: self.shared.written.get(),
            dropped: self.shared.dropped.get(),
            sampled: self.shared.sampled.get(),
        }
    }

    /// Closes the queue and joins the flusher, guaranteeing every queued
    /// event has reached the inner sink. Idempotent; emits after close
    /// are counted as dropped. Also runs on drop.
    pub fn close(&self) {
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .expect("bounded sink lock poisoned");
            queue.closed = true;
        }
        self.shared.ready.notify_all();
        let handle = self
            .flusher
            .lock()
            .expect("bounded sink lock poisoned")
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl EventSink for BoundedSink {
    fn emit(&self, event: &Event) {
        self.shared.emitted.inc();
        if let Some((n, seen)) = self.shared.sampling.get(event.name()) {
            if seen.fetch_add(1, Ordering::Relaxed) % n != 0 {
                self.shared.sampled.inc();
                return;
            }
        }
        let mut queue = self
            .shared
            .queue
            .lock()
            .expect("bounded sink lock poisoned");
        if queue.closed {
            drop(queue);
            self.shared.dropped.inc();
            return;
        }
        if let Some(adaptive) = queue.adaptive.as_mut() {
            let dropped_now = self.shared.dropped.get();
            if adaptive.consider(event.name(), dropped_now) {
                drop(queue);
                self.shared.sampled.inc();
                return;
            }
        }
        if queue.events.len() >= self.shared.capacity {
            match self.shared.overflow {
                OverflowPolicy::DropNewest => {
                    drop(queue);
                    self.shared.dropped.inc();
                    return;
                }
                OverflowPolicy::DropOldest => {
                    // Evict the head to admit the incoming event; the
                    // eviction is the counted drop.
                    queue.events.pop_front();
                    queue.events.push_back(event.clone());
                    drop(queue);
                    self.shared.dropped.inc();
                    self.shared.ready.notify_one();
                    return;
                }
            }
        }
        queue.events.push_back(event.clone());
        drop(queue);
        self.shared.ready.notify_one();
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

impl Drop for BoundedSink {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    use super::*;
    use crate::event::{MemorySink, NullSink};

    /// An inner sink that sleeps per event — a stand-in for slow trace
    /// I/O — while recording what it received.
    struct SlowSink {
        inner: MemorySink,
        delay: Duration,
    }

    impl EventSink for SlowSink {
        fn emit(&self, event: &Event) {
            std::thread::sleep(self.delay);
            self.inner.emit(event);
        }
    }

    #[test]
    fn accounting_is_exact_after_close() {
        let mem = Arc::new(MemorySink::new());
        let sink = BoundedSink::builder().capacity(8).build(mem.clone());
        for i in 0..100u64 {
            sink.emit(&Event::new("t").u64("i", i));
        }
        sink.close();
        let stats = sink.stats();
        assert_eq!(stats.emitted, 100);
        assert_eq!(stats.sampled, 0);
        assert_eq!(
            stats.emitted,
            stats.written + stats.dropped,
            "every event is written or counted as dropped"
        );
        assert_eq!(mem.len() as u64, stats.written, "inner sink agrees");
    }

    #[test]
    fn emitter_never_waits_for_a_slow_inner_sink() {
        let slow = Arc::new(SlowSink {
            inner: MemorySink::new(),
            delay: Duration::from_millis(5),
        });
        let sink = BoundedSink::builder().capacity(4).build(slow.clone());
        let events = 2_000u64; // serially through the sink: >= 10 seconds
        let start = Instant::now();
        for i in 0..events {
            sink.emit(&Event::new("t").u64("i", i));
        }
        let emit_elapsed = start.elapsed();
        sink.close();
        assert!(
            emit_elapsed < Duration::from_secs(2),
            "emit loop took {emit_elapsed:?}, the sink must not block on I/O"
        );
        let stats = sink.stats();
        assert!(stats.dropped > 0, "a 4-slot queue must overflow");
        assert_eq!(stats.emitted, events);
        assert_eq!(stats.emitted, stats.written + stats.dropped);
        assert_eq!(slow.inner.len() as u64, stats.written);
    }

    #[test]
    fn nothing_is_dropped_below_capacity() {
        let mem = Arc::new(MemorySink::new());
        let sink = BoundedSink::builder().capacity(64).build(mem.clone());
        for i in 0..32u64 {
            sink.emit(&Event::new("t").u64("i", i));
            // Pace emission so the flusher keeps the queue shallow.
            if i % 8 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        sink.close();
        let stats = sink.stats();
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.written, 32);
        // Order is preserved end to end.
        let lines = mem.lines();
        assert_eq!(lines.len(), 32);
        for (i, line) in lines.iter().enumerate() {
            let parsed = crate::jsonl::parse_line(line).unwrap();
            assert_eq!(parsed.u64("i"), Some(i as u64));
        }
    }

    #[test]
    fn sampling_thins_named_events_and_is_counted() {
        let mem = Arc::new(MemorySink::new());
        let sink = BoundedSink::builder()
            .sample_one_in("exec.step", 4)
            .build(mem.clone());
        for i in 0..8u64 {
            sink.emit(&Event::new("exec.step").u64("i", i));
        }
        for _ in 0..3 {
            sink.emit(&Event::new("exec.finish"));
        }
        sink.close();
        let stats = sink.stats();
        assert_eq!(stats.emitted, 11);
        assert_eq!(stats.sampled, 6, "6 of 8 exec.step thinned out");
        assert_eq!(stats.written, 5, "2 sampled-in steps + 3 finishes");
        assert_eq!(stats.emitted, stats.written + stats.dropped + stats.sampled);
        let steps = mem
            .lines()
            .iter()
            .filter(|l| l.contains("exec.step"))
            .count();
        assert_eq!(steps, 2, "events 0 and 4 survive 1-in-4 sampling");
    }

    #[test]
    fn drop_oldest_keeps_the_tail() {
        let slow = Arc::new(SlowSink {
            inner: MemorySink::new(),
            delay: Duration::from_millis(5),
        });
        let sink = BoundedSink::builder()
            .capacity(4)
            .overflow(OverflowPolicy::DropOldest)
            .build(slow.clone());
        assert_eq!(sink.overflow(), OverflowPolicy::DropOldest);
        for i in 0..500u64 {
            sink.emit(&Event::new("t").u64("i", i));
        }
        sink.close();
        let stats = sink.stats();
        assert!(stats.dropped > 0, "a 4-slot queue must overflow");
        assert_eq!(stats.emitted, stats.written + stats.dropped);
        assert_eq!(slow.inner.len() as u64, stats.written);
        // Eviction preserves the tail: the final emit is never the drop,
        // so the last written line is always the last emitted event.
        let last = slow.inner.lines().pop().unwrap();
        let parsed = crate::jsonl::parse_line(&last).unwrap();
        assert_eq!(parsed.u64("i"), Some(499));
    }

    #[test]
    fn close_is_idempotent_and_late_emits_drop() {
        let mem = Arc::new(MemorySink::new());
        let sink = BoundedSink::new(mem.clone());
        sink.emit(&Event::new("t"));
        sink.close();
        sink.close();
        sink.emit(&Event::new("late"));
        let stats = sink.stats();
        assert_eq!(stats.written, 1);
        assert_eq!(stats.dropped, 1, "post-close emits are counted drops");
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn drop_flushes_conclusively() {
        let mem = Arc::new(MemorySink::new());
        {
            let sink = BoundedSink::new(mem.clone());
            for i in 0..16u64 {
                sink.emit(&Event::new("t").u64("i", i));
            }
        } // dropped here, not explicitly closed
        assert_eq!(mem.len(), 16, "drop must drain the queue");
    }

    #[test]
    fn accounting_lands_in_a_shared_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = BoundedSink::builder()
            .capacity(2)
            .registry(registry.clone())
            .build(Arc::new(SlowSink {
                inner: MemorySink::new(),
                delay: Duration::from_millis(20),
            }));
        for _ in 0..64 {
            sink.emit(&Event::new("t"));
        }
        sink.close();
        let snap = registry.snapshot();
        let emitted = snap.counter("obs.emitted_events").unwrap();
        let written = snap.counter("obs.written_events").unwrap();
        let dropped = snap.counter("obs.dropped_events").unwrap();
        assert_eq!(emitted, 64);
        assert!(dropped > 0);
        assert_eq!(emitted, written + dropped);
    }

    #[test]
    fn concurrent_emitters_account_exactly() {
        let mem = Arc::new(MemorySink::new());
        let sink = Arc::new(BoundedSink::builder().capacity(32).build(mem.clone()));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..250u64 {
                        sink.emit(&Event::new("t").u64("n", t * 1000 + i));
                    }
                });
            }
        });
        sink.close();
        let stats = sink.stats();
        assert_eq!(stats.emitted, 1000);
        assert_eq!(stats.emitted, stats.written + stats.dropped);
        assert_eq!(mem.len() as u64, stats.written);
    }

    #[test]
    fn adaptive_raises_heavy_hitters_on_drop_growth_and_decays() {
        let mut adaptive = Adaptive {
            window: 16,
            seen: 0,
            dropped_at_start: 0,
            counts: BTreeMap::new(),
            factors: BTreeMap::new(),
        };
        // Window 1: no drops — nothing raised.
        for _ in 0..16 {
            assert!(!adaptive.consider("hot", 0));
        }
        assert!(adaptive.factors.is_empty());
        // Window 2: drops grew; "hot" fills the window, "rare" does not.
        for _ in 0..15 {
            adaptive.consider("hot", 4);
        }
        adaptive.consider("rare", 4);
        assert_eq!(adaptive.factors.get("hot").map(|(f, _)| *f), Some(2));
        assert_eq!(adaptive.factors.get("rare"), None, "rare names spared");
        // Window 3 with factor 2: every other "hot" event is thinned.
        let thinned = (0..16).filter(|_| adaptive.consider("hot", 4)).count();
        assert_eq!(thinned, 8);
        // Drops stopped growing across window 3, so the factor decayed.
        assert!(adaptive.factors.is_empty(), "drop-free window decays to 1");
        // Sustained growth compounds but saturates at the cap.
        for round in 0..20u64 {
            for _ in 0..16 {
                adaptive.consider("hot", 5 + round);
            }
        }
        assert_eq!(
            adaptive.factors.get("hot").map(|(f, _)| *f),
            Some(MAX_ADAPTIVE_FACTOR)
        );
    }

    #[test]
    fn adaptive_sampling_reacts_to_overflow_with_exact_ledger() {
        let slow = Arc::new(SlowSink {
            inner: MemorySink::new(),
            delay: Duration::from_millis(2),
        });
        let sink = BoundedSink::builder()
            .capacity(1)
            .adaptive_sampling(16)
            .build(slow.clone());
        for i in 0..600u64 {
            sink.emit(&Event::new("exec.step").u64("i", i));
        }
        assert!(
            sink.adaptive_factor("exec.step") > 1,
            "sustained drops must raise the exec.step factor"
        );
        assert_eq!(sink.adaptive_factor("exec.finish"), 1);
        sink.close();
        let stats = sink.stats();
        assert_eq!(stats.emitted, 600);
        assert!(stats.dropped > 0);
        assert!(stats.sampled > 0, "adaptive thinning must engage");
        assert_eq!(
            stats.emitted,
            stats.written + stats.dropped + stats.sampled,
            "the ledger stays exact under adaptive sampling"
        );
        assert_eq!(slow.inner.len() as u64, stats.written);
    }

    #[test]
    fn adaptive_sampling_is_inert_without_drops() {
        let mem = Arc::new(MemorySink::new());
        let sink = BoundedSink::builder()
            .capacity(4096)
            .adaptive_sampling(32)
            .build(mem.clone());
        for i in 0..200u64 {
            sink.emit(&Event::new("t").u64("i", i));
            if i % 16 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        sink.close();
        let stats = sink.stats();
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.sampled, 0, "no drops, no thinning");
        assert_eq!(stats.written, 200);
        assert_eq!(sink.adaptive_factor("t"), 1);
    }

    #[test]
    fn enabled_inherits_from_inner() {
        let null = BoundedSink::new(Arc::new(NullSink));
        assert!(!null.enabled());
        let mem = BoundedSink::new(Arc::new(MemorySink::new()));
        assert!(mem.enabled());
    }
}
