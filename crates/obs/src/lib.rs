//! Zero-dependency observability for the progressive pipeline.
//!
//! The paper's value proposition is *progressive* behaviour — a penalty
//! bound after every retrieval (Theorems 1–2) — which means the interesting
//! output of a run is not just the final estimates but the whole
//! *trajectory*: how fast the bound shrinks, how much I/O each step costs,
//! how often retries and deferrals interrupt the progression.  This crate
//! provides the uniform vocabulary the rest of the workspace uses to expose
//! that trajectory:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   latency [`Histogram`]s, all lock-free to update and cheap enough for
//!   per-retrieval hot paths;
//! * [`SpanTimer`] — lightweight wall-clock span timing in nanoseconds;
//! * [`Event`] / [`EventSink`] — structured trace events with a JSONL sink
//!   ([`JsonlSink`]), an in-memory sink for tests and replay
//!   ([`MemorySink`]), a no-op default ([`NullSink`]) that keeps the
//!   instrumented paths bit-for-bit identical to uninstrumented ones, a
//!   labelling adapter ([`LabeledSink`]) that stamps a fixed field (e.g.
//!   `batch = 3`) onto every event so concurrent engines can share one
//!   sink, and a non-blocking bounded-queue adapter ([`BoundedSink`])
//!   whose background flusher keeps slow trace I/O off the hot path
//!   (overflow drops-and-counts, never blocks);
//! * [`Tracer`] / [`LifecycleRecorder`] — causal spans (`span.start` /
//!   `span.end` on one monotone clock) and the per-batch [`Phase`]
//!   lifecycle whose intervals exactly partition a served batch's wall
//!   time, so SLO misses can be attributed to queueing vs store wait vs
//!   parking vs repair;
//! * [`jsonl`] — a minimal flat-JSON parser so traces can be replayed
//!   (e.g. by the `progress_report` harness in `batchbb-bench`) without an
//!   external JSON dependency.
//!
//! The crate deliberately depends on nothing but std, so any layer of the
//! workspace — including `batchbb-storage`'s retrieval hot path — can emit
//! metrics and events without a dependency cycle or a new external crate.
//!
//! # Example
//!
//! ```
//! use batchbb_obs::{Event, EventSink, MemorySink, MetricsRegistry, SpanTimer};
//! use std::sync::Arc;
//!
//! let registry = MetricsRegistry::new();
//! let steps = registry.counter("exec.steps");
//! let latency = registry.histogram("exec.step_ns");
//!
//! let sink = Arc::new(MemorySink::new());
//! let timer = SpanTimer::start();
//! steps.inc();
//! latency.record(timer.elapsed_ns());
//! sink.emit(&Event::new("exec.step").u64("step", 1).f64("importance", 2.5));
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("exec.steps"), Some(1));
//! let line = sink.lines().pop().unwrap();
//! let parsed = batchbb_obs::jsonl::parse_line(&line).unwrap();
//! assert_eq!(parsed.name(), "exec.step");
//! assert_eq!(parsed.num("importance"), Some(2.5));
//! ```

#![warn(missing_docs)]

mod bounded;
mod event;
pub mod jsonl;
mod label;
mod metrics;
mod span;
mod trace;

pub use bounded::{
    BoundedSink, BoundedSinkBuilder, BoundedSinkStats, OverflowPolicy, DEFAULT_QUEUE_CAPACITY,
    MAX_ADAPTIVE_FACTOR,
};
pub use event::{Event, EventSink, FieldValue, JsonlSink, MemorySink, NullSink};
pub use label::LabeledSink;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::SpanTimer;
pub use trace::{
    lifecycle, span_end_event, span_start_event, Lifecycle, LifecycleRecorder, Phase, PhaseGuard,
    TraceContext, Tracer,
};
