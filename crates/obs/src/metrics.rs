//! Counters, gauges, and log-bucketed histograms behind a registry.
//!
//! Updates are plain relaxed atomics — cheap enough for per-retrieval hot
//! paths — and handles are `Arc`-backed so components can keep them across
//! calls without re-hashing the metric name.  Snapshots are taken through
//! the registry and are *monotone* for counters and histograms: a later
//! snapshot never reports a smaller count than an earlier one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventSink};

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge for instantaneous levels (heap size, queue depth).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `d`.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds exactly the value 0, bucket
/// `b >= 1` holds values in `[2^(b-1), 2^b - 1]`, so 65 buckets cover all
/// of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A histogram over `u64` samples (latencies in ns, sizes, tick counts)
/// with logarithmic base-2 buckets.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// The bucket index a value lands in.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `[lower, upper]` value range of bucket `index`.
    ///
    /// # Panics
    /// If `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket {index} out of range");
        if index == 0 {
            (0, 0)
        } else if index == HISTOGRAM_BUCKETS - 1 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (index - 1), (1u64 << index) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let c = &self.0;
        c.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples recorded so far (wraps only after `u64::MAX`
    /// total).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Conservative quantile estimate over the live buckets: the upper
    /// bound of the smallest bucket prefix holding at least `q · count`
    /// samples (see [`HistogramSnapshot::quantile_upper_bound`]).
    /// Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().quantile_upper_bound(q)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| c.buckets[i].load(Ordering::Relaxed)),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram::bucket_bounds`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wraps only after `u64::MAX` total).
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the smallest bucket prefix holding at least
    /// `q · count` samples — a conservative quantile estimate (`q` in
    /// `[0, 1]`).  Returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Histogram::bucket_bounds(i).1;
            }
        }
        Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1
    }

    /// [`Self::quantile_upper_bound`] under its common name.
    pub fn percentile(&self, q: f64) -> u64 {
        self.quantile_upper_bound(q)
    }

    /// The (p50, p95, p99) bucket upper bounds in one call — the trio the
    /// snapshot exporter and the benches report.
    pub fn p50_p95_p99(&self) -> (u64, u64, u64) {
        (
            self.quantile_upper_bound(0.50),
            self.quantile_upper_bound(0.95),
            self.quantile_upper_bound(0.99),
        )
    }
}

/// A point-in-time copy of every metric in a registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge level by name, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The snapshot as `metrics.*` trace events, in a stable sorted order
    /// (counters, then gauges, then histograms, each alphabetical).
    ///
    /// Histogram events carry the derived p50/p95/p99 bucket upper bounds
    /// alongside count/sum/max/mean, so a dumped trace needs no bucket
    /// arithmetic to replot latency percentiles.  Emitting these into the
    /// same sink as the `exec.*` stream puts metrics and events in one
    /// trace file; replay tooling distinguishes them by the `metrics.`
    /// event-name prefix.
    pub fn to_events(&self) -> Vec<Event> {
        let mut out =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.histograms.len());
        for (name, value) in &self.counters {
            out.push(
                Event::new("metrics.counter")
                    .str("name", name.clone())
                    .u64("value", *value),
            );
        }
        for (name, value) in &self.gauges {
            out.push(
                Event::new("metrics.gauge")
                    .str("name", name.clone())
                    .i64("value", *value),
            );
        }
        for (name, h) in &self.histograms {
            let (p50, p95, p99) = h.p50_p95_p99();
            out.push(
                Event::new("metrics.histogram")
                    .str("name", name.clone())
                    .u64("count", h.count)
                    .u64("sum", h.sum)
                    .u64("max", h.max)
                    .f64("mean", h.mean())
                    .u64("p50", p50)
                    .u64("p95", p95)
                    .u64("p99", p99),
            );
        }
        out
    }

    /// Serializes the snapshot as JSONL lines (one `metrics.*` event per
    /// line, stable order — identical snapshots dump identical bytes).
    pub fn to_jsonl_lines(&self) -> Vec<String> {
        self.to_events().iter().map(Event::to_jsonl).collect()
    }

    /// Emits every `metrics.*` event into `sink`.
    pub fn emit(&self, sink: &dyn EventSink) {
        if !sink.enabled() {
            return;
        }
        for event in self.to_events() {
            sink.emit(&event);
        }
    }
}

/// A named collection of metrics shared across components.
///
/// Registration is idempotent: asking twice for the same name returns
/// handles backed by the same storage, so independently instrumented
/// components aggregate into one number when given the same registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns (registering if needed) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("metrics lock poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns (registering if needed) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("metrics lock poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Returns (registering if needed) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("metrics lock poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Histogram(Arc::new(HistogramCore::new())))
            .clone()
    }

    /// Snapshots every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_is_shared_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.snapshot().counter("x"), Some(5));
    }

    #[test]
    fn gauge_sets_and_adds() {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(r.snapshot().gauge("depth"), Some(7));
    }

    #[test]
    fn histogram_bucket_edges() {
        // Exhaustive check of the boundary values of every bucket.
        for b in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_index(lo), b, "lower bound of {b}");
            assert_eq!(Histogram::bucket_index(hi), b, "upper bound of {b}");
            if lo > 0 {
                assert_eq!(Histogram::bucket_index(lo - 1), b - 1);
            }
            if hi < u64::MAX {
                assert_eq!(Histogram::bucket_index(hi + 1), b + 1);
            }
        }
    }

    #[test]
    fn histogram_counts_sum_and_max() {
        let r = MetricsRegistry::new();
        let h = r.histogram("ns");
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        let s = r.snapshot();
        let hs = s.histogram("ns").unwrap();
        assert_eq!(hs.count, 6);
        assert_eq!(hs.max, u64::MAX);
        assert_eq!(hs.buckets.iter().sum::<u64>(), hs.count);
        assert_eq!(hs.buckets[0], 1); // the 0 sample
        assert_eq!(hs.buckets[1], 1); // the 1 sample
        assert_eq!(hs.buckets[2], 2); // 2 and 3
        assert_eq!(hs.buckets[HISTOGRAM_BUCKETS - 1], 1); // u64::MAX
    }

    #[test]
    fn quantile_upper_bound_is_conservative() {
        let r = MetricsRegistry::new();
        let h = r.histogram("q");
        for v in 1..=100u64 {
            h.record(v);
        }
        let hs = r.snapshot();
        let hs = hs.histogram("q").unwrap();
        let p50 = hs.quantile_upper_bound(0.5);
        let p100 = hs.quantile_upper_bound(1.0);
        assert!(p50 >= 50, "upper bound must not undershoot the quantile");
        assert!(p100 >= 100);
        assert_eq!(hs.quantile_upper_bound(0.0), 0, "q=0 needs no samples");
        assert!((hs.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let r = MetricsRegistry::new();
        let _ = r.histogram("empty");
        let s = r.snapshot();
        let hs = s.histogram("empty").unwrap();
        assert_eq!(hs.count, 0);
        assert_eq!(hs.mean(), 0.0);
        assert_eq!(hs.quantile_upper_bound(0.99), 0);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let r = MetricsRegistry::new();
        let h = r.histogram("empty");
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 0);
        let (p50, p95, p99) = r.snapshot().histogram("empty").unwrap().p50_p95_p99();
        assert_eq!((p50, p95, p99), (0, 0, 0));
    }

    #[test]
    fn percentile_of_single_bucket_histogram() {
        let r = MetricsRegistry::new();
        let h = r.histogram("one_bucket");
        // All samples land in bucket 7 = [64, 127]; every percentile
        // reports that bucket's upper bound.
        for v in [64u64, 100, 127, 64, 127] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 64 + 100 + 127 + 64 + 127);
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 127, "q={q}");
        }
    }

    #[test]
    fn percentile_of_saturating_inputs() {
        let r = MetricsRegistry::new();
        let h = r.histogram("sat");
        // u64::MAX lives in the open-topped last bucket; the sum also
        // wraps (documented) without disturbing count or percentiles.
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.01), 0, "the zero sample is the p1");
        assert_eq!(h.percentile(0.99), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
        let hs = r.snapshot();
        let hs = hs.histogram("sat").unwrap();
        assert_eq!(hs.max, u64::MAX);
        assert_eq!(hs.percentile(0.99), u64::MAX);
    }

    #[test]
    fn percentiles_are_distributed_across_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("spread");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p95, p99) = r.snapshot().histogram("spread").unwrap().p50_p95_p99();
        // Bucket upper bounds are conservative: each percentile is >= the
        // true quantile but within one power of two of it.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!((950..=1023).contains(&p95), "p95 = {p95}");
        assert!((990..=1023).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn snapshot_exports_stable_sorted_jsonl() {
        let r = MetricsRegistry::new();
        r.counter("b.count").add(2);
        r.counter("a.count").add(1);
        r.gauge("depth").set(-3);
        r.histogram("ns").record(100);
        let snap = r.snapshot();
        let lines = snap.to_jsonl_lines();
        assert_eq!(lines.len(), 4);
        // Counters first (alphabetical), then gauges, then histograms.
        assert!(lines[0].contains("\"a.count\""));
        assert!(lines[1].contains("\"b.count\""));
        assert!(lines[2].contains("\"depth\"") && lines[2].contains("-3"));
        assert!(lines[3].contains("\"ns\"") && lines[3].contains("\"p99\""));
        // Identical snapshots dump identical bytes.
        assert_eq!(lines, r.snapshot().to_jsonl_lines());
        // Every line parses back through the workspace's own reader.
        for line in &lines {
            let parsed = crate::jsonl::parse_line(line).unwrap();
            assert!(parsed.name().starts_with("metrics."));
            assert!(parsed.str("name").is_some());
        }
    }

    #[test]
    fn snapshot_emit_respects_disabled_sinks() {
        use crate::event::{EventSink, MemorySink, NullSink};
        let r = MetricsRegistry::new();
        r.counter("x").inc();
        let snap = r.snapshot();
        let mem = MemorySink::new();
        snap.emit(&mem);
        assert_eq!(mem.len(), 1);
        // A disabled sink gets nothing (and no events are built).
        snap.emit(&NullSink);
        assert!(!NullSink.enabled());
    }
}
