//! Lightweight wall-clock span timing.

use std::time::Instant;

use crate::Histogram;

/// Times a span of work in nanoseconds.
///
/// A `SpanTimer` is just an [`Instant`]; starting one costs a single clock
/// read, so instrumented hot paths can time every retrieval.  Readings
/// saturate at `u64::MAX` nanoseconds (~584 years).
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Starts timing now.
    pub fn start() -> Self {
        SpanTimer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`SpanTimer::start`].
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed nanoseconds into `histogram` and returns them.
    pub fn finish(&self, histogram: &Histogram) -> u64 {
        let ns = self.elapsed_ns();
        histogram.record(ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn elapsed_is_monotone() {
        let t = SpanTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn finish_records_into_histogram() {
        let r = MetricsRegistry::new();
        let h = r.histogram("ns");
        let t = SpanTimer::start();
        let ns = t.finish(&h);
        assert_eq!(h.count(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.histogram("ns").unwrap().sum, ns);
    }
}
