//! Structured trace events and sinks.
//!
//! An [`Event`] is a named, flat bag of typed fields.  Components build
//! events with the fluent methods and hand them to an [`EventSink`]; the
//! sink decides what to do (drop, buffer, serialize).  Serialization is
//! one JSON object per line (JSONL) with the event name under the
//! reserved `"event"` key, hand-rolled so the crate stays
//! zero-dependency; [`crate::jsonl::parse_line`] is the matching reader.
//!
//! Instrumented hot paths are expected to check [`EventSink::enabled`]
//! before constructing an event, so the disabled ([`NullSink`]) path costs
//! one virtual call and no allocation.

use std::io::Write;
use std::sync::Mutex;

/// One typed field value of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, sizes, ticks).
    U64(u64),
    /// Signed integer (gauge levels).
    I64(i64),
    /// Floating point (importances, penalty bounds). Non-finite values
    /// serialize as JSON `null` (JSON has no NaN/inf).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (keys, error classes, engine names).
    Str(String),
}

/// A named, flat, ordered bag of typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// A new event called `name` with no fields yet.
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::with_capacity(12),
        }
    }

    /// The event name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The fields, in insertion order.
    pub fn fields(&self) -> &[(&'static str, FieldValue)] {
        &self.fields
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        self.fields.push((key, FieldValue::U64(v)));
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, key: &'static str, v: i64) -> Self {
        self.fields.push((key, FieldValue::I64(v)));
        self
    }

    /// Adds a floating-point field.
    pub fn f64(mut self, key: &'static str, v: f64) -> Self {
        self.fields.push((key, FieldValue::F64(v)));
        self
    }

    /// Adds a floating-point field only when `v` is finite — the schema
    /// treats a non-finite measurement as "not available".
    pub fn f64_finite(self, key: &'static str, v: f64) -> Self {
        if v.is_finite() {
            self.f64(key, v)
        } else {
            self
        }
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &'static str, v: bool) -> Self {
        self.fields.push((key, FieldValue::Bool(v)));
        self
    }

    /// Adds a text field.
    pub fn str(mut self, key: &'static str, v: impl Into<String>) -> Self {
        self.fields.push((key, FieldValue::Str(v.into())));
        self
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + 24 * self.fields.len());
        out.push_str("{\"event\":");
        write_json_string(&mut out, self.name);
        for (key, value) in &self.fields {
            out.push(',');
            write_json_string(&mut out, key);
            out.push(':');
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::I64(v) => out.push_str(&v.to_string()),
                FieldValue::F64(v) => {
                    if v.is_finite() {
                        // Debug formatting is the shortest round-trip
                        // representation and uses JSON-compatible exponents.
                        out.push_str(&format!("{v:?}"));
                    } else {
                        out.push_str("null");
                    }
                }
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                FieldValue::Str(v) => write_json_string(&mut out, v),
            }
        }
        out.push('}');
        out
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where events go.
///
/// Implementations must be cheap when disabled and safe to share across
/// threads (`&self` emission).
pub trait EventSink: Send + Sync {
    /// Delivers one event.
    fn emit(&self, event: &Event);

    /// Whether emitting is worthwhile.  Hot paths check this before
    /// building an [`Event`]; the default says yes.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op default sink: nothing is recorded, nothing is allocated.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Serializes every event as one JSON line into a writer.
///
/// The writer sits behind a mutex, so one sink can serve concurrently
/// executing components (e.g. parallel rewrite workers).  The writer is
/// flushed on [`Drop`] as well as by [`JsonlSink::into_inner`] /
/// [`JsonlSink::flush`], so short-lived processes (examples, one-shot
/// harnesses) never lose their tail events to a buffering writer.
pub struct JsonlSink<W: Write + Send> {
    // `Option` so `into_inner` can move the writer out despite the
    // flush-on-drop impl; it is `None` only after `into_inner`.
    writer: Mutex<Option<W>>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(Some(writer)),
        }
    }

    /// Flushes and returns the writer.
    pub fn into_inner(self) -> W {
        let mut w = self
            .writer
            .lock()
            .expect("sink lock poisoned")
            .take()
            .expect("writer present until into_inner");
        let _ = w.flush();
        w
    }

    /// Flushes buffered output.
    pub fn flush(&self) -> std::io::Result<()> {
        match self.writer.lock().expect("sink lock poisoned").as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, event: &Event) {
        let line = event.to_jsonl();
        if let Some(w) = self.writer.lock().expect("sink lock poisoned").as_mut() {
            // A trace is diagnostics: losing a line to a full disk must not
            // fail the evaluation it observes.
            let _ = writeln!(w, "{line}");
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Same contract as emit: flush errors are diagnostics, not faults —
        // and a lock poisoned by a panicking emitter must not double-panic
        // here.
        if let Ok(mut guard) = self.writer.lock() {
            if let Some(w) = guard.as_mut() {
                let _ = w.flush();
            }
        }
    }
}

/// Buffers serialized lines in memory — the sink tests and the
/// `progress_report` self-demo replay from.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of every line emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("sink lock poisoned").clone()
    }

    /// Number of lines emitted so far.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("sink lock poisoned").len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.lines
            .lock()
            .expect("sink lock poisoned")
            .push(event.to_jsonl());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_field_types_in_order() {
        let e = Event::new("t")
            .u64("u", 7)
            .i64("i", -2)
            .f64("f", 1.5)
            .bool("b", true)
            .str("s", "x\"y\\z");
        assert_eq!(
            e.to_jsonl(),
            r#"{"event":"t","u":7,"i":-2,"f":1.5,"b":true,"s":"x\"y\\z"}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new("t")
            .f64("nan", f64::NAN)
            .f64("inf", f64::INFINITY);
        assert_eq!(e.to_jsonl(), r#"{"event":"t","nan":null,"inf":null}"#);
        let skipped = Event::new("t").f64_finite("nan", f64::NAN).u64("k", 1);
        assert_eq!(skipped.to_jsonl(), r#"{"event":"t","k":1}"#);
    }

    #[test]
    fn control_chars_are_escaped() {
        let e = Event::new("t").str("s", "a\nb\tc\u{1}");
        assert_eq!(e.to_jsonl(), "{\"event\":\"t\",\"s\":\"a\\nb\\tc\\u0001\"}");
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        NullSink.emit(&Event::new("ignored"));
    }

    #[test]
    fn memory_sink_buffers_lines() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.emit(&Event::new("a").u64("n", 1));
        sink.emit(&Event::new("b").u64("n", 2));
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"a\""));
    }

    /// A writer that buffers internally and publishes to a shared string
    /// only on `flush()` — the worst case for tail loss (a plain
    /// `BufWriter` flushes on its own drop; this one deliberately does
    /// not, so only `JsonlSink`'s drop-flush can save the tail).
    struct FlushOnlyWriter {
        buffered: Vec<u8>,
        published: std::sync::Arc<Mutex<Vec<u8>>>,
    }

    impl Write for FlushOnlyWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.buffered.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.published
                .lock()
                .unwrap()
                .extend_from_slice(&self.buffered);
            self.buffered.clear();
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let published = std::sync::Arc::new(Mutex::new(Vec::new()));
        {
            let sink = JsonlSink::new(FlushOnlyWriter {
                buffered: Vec::new(),
                published: published.clone(),
            });
            sink.emit(&Event::new("tail").u64("n", 7));
            assert!(
                published.lock().unwrap().is_empty(),
                "writer holds the line until a flush"
            );
        } // sink dropped without into_inner or an explicit flush
        let text = String::from_utf8(published.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text, "{\"event\":\"tail\",\"n\":7}\n",
            "drop must flush the tail event through"
        );
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&Event::new("a").u64("n", 1));
        sink.emit(&Event::new("b").bool("ok", false));
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"event":"a","n":1}"#);
        assert_eq!(lines[1], r#"{"event":"b","ok":false}"#);
    }
}
