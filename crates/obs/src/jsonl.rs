//! A minimal reader for the flat JSONL emitted by [`crate::JsonlSink`].
//!
//! The event schema is intentionally flat — one object per line, string
//! keys, scalar values — so a tiny hand-rolled parser suffices and the
//! crate stays zero-dependency.  Supported value forms: strings (with the
//! escapes [`crate::Event::to_jsonl`] produces plus `\/`, `\b`, `\f`, and
//! `\uXXXX`), numbers (parsed as `f64`), `true`, `false`, and `null`
//! (which marks a non-finite measurement and parses to an *absent*
//! field).  Nested objects and arrays are rejected: nothing in the schema
//! produces them.

use std::collections::BTreeMap;

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    name: String,
    fields: BTreeMap<String, ParsedValue>,
}

/// A scalar value read back from a trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedValue {
    /// Any JSON number (integers included).
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

impl ParsedEvent {
    /// The event name (the reserved `"event"` key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All fields except the name, keyed by field name.
    pub fn fields(&self) -> &BTreeMap<String, ParsedValue> {
        &self.fields
    }

    /// Numeric field, if present and numeric.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.fields.get(key) {
            Some(ParsedValue::Num(v)) => Some(*v),
            _ => None,
        }
    }

    /// Numeric field truncated to `u64` (counts are emitted as integers
    /// well below 2^53, where `f64` is exact).
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.num(key).map(|v| v as u64)
    }

    /// String field, if present and a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.fields.get(key) {
            Some(ParsedValue::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// Boolean field, if present and boolean.
    pub fn bool(&self, key: &str) -> Option<bool> {
        match self.fields.get(key) {
            Some(ParsedValue::Bool(v)) => Some(*v),
            _ => None,
        }
    }
}

/// Parses one trace line into a [`ParsedEvent`].
///
/// Returns a human-readable error description on malformed input.
pub fn parse_line(line: &str) -> Result<ParsedEvent, String> {
    let line = line.trim();
    let mut p = Parser {
        chars: line.char_indices().peekable(),
        src: line,
    };
    p.expect('{')?;
    let mut name = None;
    let mut fields = BTreeMap::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        if !fields.is_empty() || name.is_some() {
            p.expect(',')?;
            p.skip_ws();
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.value()?;
        if key == "event" {
            match value {
                Some(ParsedValue::Str(s)) => name = Some(s),
                other => return Err(format!("\"event\" must be a string, got {other:?}")),
            }
        } else if let Some(v) = value {
            fields.insert(key, v);
        }
        // null values fall through: the field is simply absent
    }
    p.skip_ws();
    if p.chars.next().is_some() {
        return Err("trailing characters after object".to_string());
    }
    Ok(ParsedEvent {
        name: name.ok_or("missing \"event\" key")?,
        fields,
    })
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at byte {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of line")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, c) = self
                                .chars
                                .next()
                                .ok_or("truncated \\u escape".to_string())?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or(format!("bad hex digit '{c}' in \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or(format!("\\u{code:04x} is not a scalar value"))?,
                        );
                    }
                    Some((_, c)) => return Err(format!("unknown escape '\\{c}' at byte {i}")),
                    None => return Err("truncated escape".to_string()),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    /// One scalar value; `Ok(None)` for JSON `null`.
    fn value(&mut self) -> Result<Option<ParsedValue>, String> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(Some(ParsedValue::Str(self.string()?))),
            Some((_, 't')) => {
                self.literal("true")?;
                Ok(Some(ParsedValue::Bool(true)))
            }
            Some((_, 'f')) => {
                self.literal("false")?;
                Ok(Some(ParsedValue::Bool(false)))
            }
            Some((_, 'n')) => {
                self.literal("null")?;
                Ok(None)
            }
            Some((_, '{')) | Some((_, '[')) => {
                Err("nested objects/arrays are not part of the schema".to_string())
            }
            Some((start, _)) => {
                let start = *start;
                let mut end = self.src.len();
                while let Some((i, c)) = self.chars.peek() {
                    if matches!(c, ',' | '}' | ']') || c.is_ascii_whitespace() {
                        end = *i;
                        break;
                    }
                    self.chars.next();
                }
                let text = &self.src[start..end];
                text.parse::<f64>()
                    .map(|v| Some(ParsedValue::Num(v)))
                    .map_err(|_| format!("bad number `{text}`"))
            }
            None => Err("expected a value, found end of line".to_string()),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        for want in word.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                other => return Err(format!("bad literal, expected `{word}`, got {other:?}")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    #[test]
    fn round_trips_an_event() {
        let line = Event::new("exec.step")
            .u64("step", 12)
            .f64("importance", 0.03125)
            .f64("bound", 1.5e-7)
            .bool("exact", false)
            .str("key", "(3, 4)")
            .to_jsonl();
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.name(), "exec.step");
        assert_eq!(parsed.u64("step"), Some(12));
        assert_eq!(parsed.num("importance"), Some(0.03125));
        assert_eq!(parsed.num("bound"), Some(1.5e-7));
        assert_eq!(parsed.bool("exact"), Some(false));
        assert_eq!(parsed.str("key"), Some("(3, 4)"));
    }

    #[test]
    fn null_fields_parse_as_absent() {
        let line = Event::new("t").f64("nan", f64::NAN).u64("k", 1).to_jsonl();
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.num("nan"), None);
        assert_eq!(parsed.u64("k"), Some(1));
    }

    #[test]
    fn escapes_round_trip() {
        let weird = "a\"b\\c\nd\te\u{1}f/g";
        let line = Event::new("t").str("s", weird).to_jsonl();
        assert_eq!(parse_line(&line).unwrap().str("s"), Some(weird));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{").is_err());
        assert!(parse_line("{}").is_err()); // no "event"
        assert!(parse_line(r#"{"event":7}"#).is_err());
        assert!(parse_line(r#"{"event":"x","a":[1]}"#).is_err());
        assert!(parse_line(r#"{"event":"x","a":{"b":1}}"#).is_err());
        assert!(parse_line(r#"{"event":"x","a":bogus}"#).is_err());
        assert!(parse_line(r#"{"event":"x"} trailing"#).is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let parsed = parse_line("  { \"event\" : \"x\" , \"n\" : 4 }  ").unwrap();
        assert_eq!(parsed.name(), "x");
        assert_eq!(parsed.u64("n"), Some(4));
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let parsed = parse_line(r#"{"event":"x","a":-3.5,"b":2e10,"c":1e-300}"#).unwrap();
        assert_eq!(parsed.num("a"), Some(-3.5));
        assert_eq!(parsed.num("b"), Some(2e10));
        assert_eq!(parsed.num("c"), Some(1e-300));
    }
}
