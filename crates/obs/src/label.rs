//! Per-scope event labelling.
//!
//! Concurrent serving runs many evaluation engines against one shared
//! trace sink; without a discriminator their `exec.*` events interleave
//! indistinguishably.  [`LabeledSink`] is an [`EventSink`] adapter that
//! stamps a fixed `key = value` field onto every event it forwards — the
//! `batchbb-serve` pool gives each batch a `batch = <id>` label this way,
//! so one JSONL trace can be split back into per-batch trajectories by the
//! replay tooling.

use std::sync::Arc;

use crate::event::{Event, EventSink};

/// Forwards every event to an inner sink with one extra `u64` field
/// appended.
///
/// Labels compose: wrapping a `LabeledSink` in another adds a second
/// field. The adapter inherits the inner sink's
/// [`enabled`](EventSink::enabled) state, so labelling a [`crate::NullSink`]
/// still costs nothing.
pub struct LabeledSink {
    inner: Arc<dyn EventSink>,
    key: &'static str,
    value: u64,
}

impl LabeledSink {
    /// Wraps `inner`, appending `key = value` to every forwarded event.
    pub fn new(inner: Arc<dyn EventSink>, key: &'static str, value: u64) -> Self {
        LabeledSink { inner, key, value }
    }

    /// The label this sink stamps.
    pub fn label(&self) -> (&'static str, u64) {
        (self.key, self.value)
    }
}

impl EventSink for LabeledSink {
    fn emit(&self, event: &Event) {
        self.inner.emit(&event.clone().u64(self.key, self.value));
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemorySink, NullSink};
    use crate::jsonl;

    #[test]
    fn stamps_the_label_on_every_event() {
        let mem = Arc::new(MemorySink::new());
        let sink = LabeledSink::new(mem.clone(), "batch", 3);
        assert_eq!(sink.label(), ("batch", 3));
        sink.emit(&Event::new("exec.step").u64("step", 1));
        sink.emit(&Event::new("exec.finish"));
        for line in mem.lines() {
            let parsed = jsonl::parse_line(&line).unwrap();
            assert_eq!(parsed.num("batch"), Some(3.0));
        }
    }

    #[test]
    fn labels_compose() {
        let mem = Arc::new(MemorySink::new());
        let sink = LabeledSink::new(
            Arc::new(LabeledSink::new(mem.clone(), "batch", 1)),
            "worker",
            2,
        );
        sink.emit(&Event::new("exec.step"));
        let parsed = jsonl::parse_line(&mem.lines()[0]).unwrap();
        assert_eq!(parsed.num("batch"), Some(1.0));
        assert_eq!(parsed.num("worker"), Some(2.0));
    }

    #[test]
    fn inherits_enabled_from_inner() {
        assert!(!LabeledSink::new(Arc::new(NullSink), "batch", 0).enabled());
        assert!(LabeledSink::new(Arc::new(MemorySink::new()), "batch", 0).enabled());
    }
}
