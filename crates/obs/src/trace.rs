//! Causal batch-lifecycle tracing: spans, the phase taxonomy, and the
//! per-batch [`LifecycleRecorder`].
//!
//! A served batch's wall time now crosses five subsystems — admission,
//! the slice scheduler, the executor, the (possibly asynchronous) store,
//! and version repair — and the `exec.*`/`slo.*` counters cannot say
//! *where* a degraded batch spent its time. This module adds the causal
//! layer: a run-wide [`Tracer`] hands out span ids on one monotone clock,
//! `span.start`/`span.end` events mark intervals, and every batch carries
//! a [`LifecycleRecorder`] that accumulates [`Phase`] intervals and
//! flushes them into the trace at finalize (like the serve-pool metrics
//! snapshot: buffered per batch, written once).
//!
//! # Accounting identity
//!
//! A recorder stores *transitions*, not intervals: entering a phase at
//! `t` ends the previous phase at exactly `t`. Flushing therefore emits
//! intervals that **partition** the batch's admitted-to-finalized wall
//! time by construction — consecutive intervals share their boundary
//! timestamp (u64 equality, no float slack), the first starts at the
//! batch's root-span start and the last ends at its root-span end. The
//! `progress_report --attribute` replay verifies this identity on every
//! trace and exits nonzero if any batch's phases fail to telescope.
//!
//! # Cost contract
//!
//! Tracing is strictly opt-in and adds **no locks to the untraced hot
//! path**: every instrumented site guards on an `Option` that is `None`
//! unless a tracer was configured, exactly like `ExecObserver`. When
//! tracing is on, a recorder is shared behind a mutex, but ownership of a
//! batch already passes serially (admission thread → at most one worker
//! holding the slice lock at a time), so the mutex is uncontended — it
//! exists to satisfy `Sync`, not to coordinate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, EventSink};

/// The causal coordinates of one span: which trace it belongs to, its own
/// id, and its parent (if nested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The run-wide trace the span belongs to.
    pub trace_id: u64,
    /// This span's id, unique within the trace.
    pub span_id: u64,
    /// The enclosing span, or `None` for a root span.
    pub parent_span_id: Option<u64>,
}

/// The batch-lifecycle phase taxonomy. Every nanosecond of a traced
/// batch's wall time belongs to exactly one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Admission control is pricing the contract (serial, on the caller
    /// thread).
    Admitted,
    /// Runnable but not on a worker: waiting in the slice queue.
    Queued,
    /// A worker is advancing the executor inside a slice.
    Executing,
    /// Blocked on the coefficient store: a synchronous retrieval, a
    /// prefetch submit, or an async completion wait.
    StoreWait,
    /// Shelved on an outstanding async prefetch; the pool is advancing
    /// other batches.
    Parked,
    /// Estimates and certified bounds are being repaired against a live
    /// update (stop-the-world barrier) or a version advance.
    Repair,
    /// Terminal bookkeeping: outcome classification, result publication,
    /// trace flush.
    Finalize,
}

impl Phase {
    /// Every phase, in canonical (declaration) order.
    pub const ALL: [Phase; 7] = [
        Phase::Admitted,
        Phase::Queued,
        Phase::Executing,
        Phase::StoreWait,
        Phase::Parked,
        Phase::Repair,
        Phase::Finalize,
    ];

    /// Stable snake_case label, used as the `phase` field of span events.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Admitted => "admitted",
            Phase::Queued => "queued",
            Phase::Executing => "executing",
            Phase::StoreWait => "store_wait",
            Phase::Parked => "parked",
            Phase::Repair => "repair",
            Phase::Finalize => "finalize",
        }
    }

    /// One-letter code for compact waterfall rendering.
    pub fn letter(&self) -> char {
        match self {
            Phase::Admitted => 'A',
            Phase::Queued => 'Q',
            Phase::Executing => 'E',
            Phase::StoreWait => 'S',
            Phase::Parked => 'P',
            Phase::Repair => 'R',
            Phase::Finalize => 'F',
        }
    }

    /// Parses a [`Phase::label`] back; `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == label)
    }
}

struct TracerInner {
    origin: Instant,
    trace_id: u64,
    next_span: AtomicU64,
}

/// The run-wide span authority: one monotone clock plus a span-id
/// allocator, shared (cheaply cloned) by every component of a traced run
/// so their spans land on a single comparable timeline.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("trace_id", &self.inner.trace_id)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A fresh tracer for one run. `trace_id` names the run; spans from
    /// tracers with different origins are not time-comparable, so wire
    /// **one** tracer through every component of a run.
    pub fn new(trace_id: u64) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                origin: Instant::now(),
                trace_id,
                next_span: AtomicU64::new(0),
            }),
        }
    }

    /// The run's trace id.
    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// Nanoseconds since the tracer was created (monotone; saturates at
    /// `u64::MAX`, ~584 years).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Allocates the next span id (unique within this trace, starting
    /// at 1 so 0 never names a span).
    pub fn next_span_id(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// A root [`TraceContext`] with a freshly allocated span id.
    pub fn root_context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id(),
            span_id: self.next_span_id(),
            parent_span_id: None,
        }
    }

    /// A child [`TraceContext`] under `parent`.
    pub fn child_context(&self, parent: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id(),
            span_id: self.next_span_id(),
            parent_span_id: Some(parent),
        }
    }
}

/// Builds the `span.start` event for `ctx` at `ts_ns`. Callers may append
/// extra fields before emitting.
pub fn span_start_event(name: &'static str, ctx: TraceContext, ts_ns: u64) -> Event {
    let event = Event::new("span.start")
        .str("name", name)
        .u64("trace", ctx.trace_id)
        .u64("span", ctx.span_id)
        .u64("ts_ns", ts_ns);
    match ctx.parent_span_id {
        Some(parent) => event.u64("parent", parent),
        None => event,
    }
}

/// Builds the matching `span.end` event for span `span_id` at `ts_ns`.
pub fn span_end_event(ctx: TraceContext, ts_ns: u64) -> Event {
    Event::new("span.end")
        .u64("trace", ctx.trace_id)
        .u64("span", ctx.span_id)
        .u64("ts_ns", ts_ns)
}

/// Accumulates one batch's phase intervals and flushes them as spans at
/// finalize.
///
/// The recorder never emits mid-flight: `transition` appends one
/// `(phase, timestamp)` pair to a vector (amortized O(1), no I/O), and
/// [`flush`](LifecycleRecorder::flush) turns the transition list into the
/// batch root span plus one child span per phase interval. Same-phase
/// transitions are absorbed and zero-length intervals are dropped at
/// flush, neither of which can break the partition identity: dropped
/// intervals are empty and neighbours share their boundary timestamp.
pub struct LifecycleRecorder {
    tracer: Tracer,
    sink: Arc<dyn EventSink>,
    batch: u64,
    root: u64,
    transitions: Vec<(Phase, u64)>,
    flushed: bool,
}

impl std::fmt::Debug for LifecycleRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifecycleRecorder")
            .field("batch", &self.batch)
            .field("root", &self.root)
            .field("transitions", &self.transitions)
            .field("flushed", &self.flushed)
            .finish_non_exhaustive()
    }
}

impl LifecycleRecorder {
    /// Starts a batch lifecycle in [`Phase::Admitted`] now, allocating
    /// the batch's root span.
    pub fn begin(tracer: Tracer, sink: Arc<dyn EventSink>, batch: u64) -> Self {
        let root = tracer.next_span_id();
        let now = tracer.now_ns();
        LifecycleRecorder {
            tracer,
            sink,
            batch,
            root,
            transitions: vec![(Phase::Admitted, now)],
            flushed: false,
        }
    }

    /// The batch index this recorder traces.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// The batch's root span id (the parent of every phase span and of
    /// per-batch executor spans such as prefetch windows).
    pub fn root_span(&self) -> u64 {
        self.root
    }

    /// The run's tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The sink the lifecycle flushes into.
    pub fn sink(&self) -> &Arc<dyn EventSink> {
        &self.sink
    }

    /// The phase the batch is in right now.
    pub fn phase(&self) -> Phase {
        self.transitions
            .last()
            .map(|(p, _)| *p)
            .unwrap_or(Phase::Admitted)
    }

    /// Enters `phase` now, ending the current phase at the same instant.
    /// A same-phase transition is a no-op, and transitions after
    /// [`flush`](LifecycleRecorder::flush) are ignored.
    pub fn transition(&mut self, phase: Phase) {
        if self.flushed || self.phase() == phase {
            return;
        }
        let now = self.tracer.now_ns();
        self.transitions.push((phase, now));
    }

    /// Ends the lifecycle now and emits the batch root span plus one
    /// child span per phase interval. Idempotent; called once at
    /// finalize.
    pub fn flush(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        if !self.sink.enabled() {
            return;
        }
        let end = self.tracer.now_ns();
        let start = self.transitions.first().map(|(_, t)| *t).unwrap_or(end);
        let root_ctx = TraceContext {
            trace_id: self.tracer.trace_id(),
            span_id: self.root,
            parent_span_id: None,
        };
        self.sink.emit(
            &span_start_event("batch", root_ctx, start)
                .u64("batch", self.batch)
                .u64("phases", self.transitions.len() as u64),
        );
        for (i, &(phase, t0)) in self.transitions.iter().enumerate() {
            let t1 = self.transitions.get(i + 1).map(|&(_, t)| t).unwrap_or(end);
            if t1 == t0 {
                continue; // empty interval; neighbours share the boundary
            }
            let ctx = self.tracer.child_context(self.root);
            self.sink.emit(
                &span_start_event("phase", ctx, t0)
                    .str("phase", phase.label())
                    .u64("batch", self.batch),
            );
            self.sink.emit(&span_end_event(ctx, t1));
        }
        self.sink
            .emit(&span_end_event(root_ctx, end).u64("batch", self.batch));
    }
}

/// A shared handle to one batch's [`LifecycleRecorder`]: the serve pool
/// and the batch's executor both write phase transitions through it. See
/// the module docs for why the mutex is uncontended by construction.
pub type Lifecycle = Arc<Mutex<LifecycleRecorder>>;

/// Wraps a recorder into the shared [`Lifecycle`] handle.
pub fn lifecycle(recorder: LifecycleRecorder) -> Lifecycle {
    Arc::new(Mutex::new(recorder))
}

/// RAII phase bracket: enters `phase` on construction and restores the
/// previous phase on drop. Used by the executor to carve
/// [`Phase::StoreWait`] out of [`Phase::Executing`] around store calls.
pub struct PhaseGuard {
    lifecycle: Lifecycle,
    prev: Phase,
}

impl PhaseGuard {
    /// Enters `phase`, remembering the current phase for restore-on-drop.
    pub fn enter(lifecycle: &Lifecycle, phase: Phase) -> PhaseGuard {
        let prev = {
            let mut recorder = lifecycle.lock().expect("lifecycle poisoned");
            let prev = recorder.phase();
            recorder.transition(phase);
            prev
        };
        PhaseGuard {
            lifecycle: Arc::clone(lifecycle),
            prev,
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Ok(mut recorder) = self.lifecycle.lock() {
            recorder.transition(self.prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl;
    use crate::MemorySink;

    fn parsed(sink: &MemorySink) -> Vec<jsonl::ParsedEvent> {
        sink.lines()
            .iter()
            .map(|l| jsonl::parse_line(l).unwrap())
            .collect()
    }

    #[test]
    fn phase_labels_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_label(phase.label()), Some(phase));
        }
        assert_eq!(Phase::from_label("bogus"), None);
        let letters: Vec<char> = Phase::ALL.iter().map(|p| p.letter()).collect();
        let mut unique = letters.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), letters.len(), "letters must be distinct");
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let tracer = Tracer::new(7);
        let a = tracer.root_context();
        let b = tracer.child_context(a.span_id);
        assert_ne!(a.span_id, 0);
        assert_ne!(a.span_id, b.span_id);
        assert_eq!(b.parent_span_id, Some(a.span_id));
        assert_eq!(a.trace_id, 7);
    }

    #[test]
    fn clock_is_monotone() {
        let tracer = Tracer::new(0);
        let a = tracer.now_ns();
        let b = tracer.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn lifecycle_phases_partition_wall_time() {
        let sink = std::sync::Arc::new(MemorySink::new());
        let tracer = Tracer::new(1);
        let mut recorder = LifecycleRecorder::begin(tracer, sink.clone(), 3);
        recorder.transition(Phase::Queued);
        recorder.transition(Phase::Executing);
        recorder.transition(Phase::Executing); // absorbed
        recorder.transition(Phase::StoreWait);
        recorder.transition(Phase::Executing);
        recorder.transition(Phase::Finalize);
        recorder.flush();
        recorder.flush(); // idempotent
        let events = parsed(&sink);
        let root_start = events
            .iter()
            .find(|e| e.name() == "span.start" && e.str("name") == Some("batch"))
            .unwrap();
        assert_eq!(root_start.u64("batch"), Some(3));
        let root_id = root_start.u64("span").unwrap();
        let root_t0 = root_start.u64("ts_ns").unwrap();
        let root_t1 = events
            .iter()
            .find(|e| e.name() == "span.end" && e.u64("span") == Some(root_id))
            .unwrap()
            .u64("ts_ns")
            .unwrap();
        // Collect phase intervals (start, end) in emission order.
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for event in &events {
            if event.name() == "span.start" && event.str("name") == Some("phase") {
                assert_eq!(event.u64("parent"), Some(root_id));
                let id = event.u64("span").unwrap();
                let t0 = event.u64("ts_ns").unwrap();
                let t1 = events
                    .iter()
                    .find(|e| e.name() == "span.end" && e.u64("span") == Some(id))
                    .unwrap()
                    .u64("ts_ns")
                    .unwrap();
                intervals.push((t0, t1));
            }
        }
        assert!(!intervals.is_empty());
        // Exact telescoping partition of the root interval.
        assert_eq!(intervals.first().unwrap().0, root_t0);
        assert_eq!(intervals.last().unwrap().1, root_t1);
        for w in intervals.windows(2) {
            assert_eq!(w[0].1, w[1].0, "intervals must share boundaries");
        }
        let total: u64 = intervals.iter().map(|(a, b)| b - a).sum();
        assert_eq!(total, root_t1 - root_t0);
    }

    #[test]
    fn phase_guard_restores_previous_phase() {
        let sink = std::sync::Arc::new(MemorySink::new());
        let tracer = Tracer::new(2);
        let recorder = LifecycleRecorder::begin(tracer, sink, 0);
        let handle = lifecycle(recorder);
        handle.lock().unwrap().transition(Phase::Executing);
        {
            let _guard = PhaseGuard::enter(&handle, Phase::StoreWait);
            assert_eq!(handle.lock().unwrap().phase(), Phase::StoreWait);
        }
        assert_eq!(handle.lock().unwrap().phase(), Phase::Executing);
    }

    #[test]
    fn transitions_after_flush_are_ignored() {
        let sink = std::sync::Arc::new(MemorySink::new());
        let tracer = Tracer::new(4);
        let mut recorder = LifecycleRecorder::begin(tracer, sink.clone(), 1);
        recorder.transition(Phase::Finalize);
        recorder.flush();
        let lines = sink.lines().len();
        recorder.transition(Phase::Queued);
        recorder.flush();
        assert_eq!(recorder.phase(), Phase::Finalize);
        assert_eq!(sink.lines().len(), lines);
    }

    #[test]
    fn disabled_sink_flushes_to_nothing() {
        let sink = std::sync::Arc::new(crate::NullSink);
        let tracer = Tracer::new(5);
        let mut recorder = LifecycleRecorder::begin(tracer, sink, 0);
        recorder.transition(Phase::Finalize);
        recorder.flush(); // must not panic, must not emit
    }
}
