//! Property-based tests for the observability primitives: registry
//! snapshots are monotone for counters, histogram samples always land in
//! the bucket whose bounds contain them, JSONL events survive a
//! serialize → parse round trip (every field type, the `f64_finite`
//! omission rule, escaped strings), and the bounded sink's accounting is
//! exact under arbitrary event streams.

use std::sync::Arc;

use proptest::prelude::*;

use batchbb_obs::{
    jsonl, BoundedSink, Event, EventSink, Histogram, MemorySink, MetricsRegistry, OverflowPolicy,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counters never decrease across snapshots, whatever interleaving of
    /// increments and snapshot reads happens.
    #[test]
    fn counter_snapshots_are_monotone(increments in prop::collection::vec((0usize..4, 0u64..1000), 1..64)) {
        let registry = MetricsRegistry::new();
        let names = ["a", "b", "c", "d"];
        let counters: Vec<_> = names.iter().map(|n| registry.counter(n)).collect();
        let mut last = registry.snapshot();
        for (which, amount) in increments {
            counters[which].add(amount);
            let snap = registry.snapshot();
            for name in names {
                let prev = last.counter(name).unwrap_or(0);
                let now = snap.counter(name).unwrap_or(0);
                prop_assert!(now >= prev, "counter {name} went {prev} -> {now}");
            }
            last = snap;
        }
        // The final snapshot accounts for every increment exactly.
        let total: u64 = last.counters.values().sum();
        let expected: u64 = counters.iter().map(|c| c.get()).sum();
        prop_assert_eq!(total, expected);
    }

    /// Histogram sample counts (total and per bucket) never decrease, and
    /// every recorded value lands in the bucket whose inclusive bounds
    /// contain it.
    #[test]
    fn histogram_buckets_contain_their_samples(values in prop::collection::vec(0u64..u64::MAX, 1..128)) {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("ns");
        let mut last = registry.snapshot();
        for &v in &values {
            let bucket = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(bucket);
            prop_assert!(lo <= v && v <= hi, "{v} outside bucket {bucket} = [{lo}, {hi}]");
            // Neighbouring buckets must NOT contain the value.
            if bucket > 0 {
                let (_, below_hi) = Histogram::bucket_bounds(bucket - 1);
                prop_assert!(v > below_hi);
            }
            h.record(v);
            let snap = registry.snapshot();
            let prev = last.histogram("ns").unwrap();
            let now = snap.histogram("ns").unwrap();
            prop_assert_eq!(now.count, prev.count + 1);
            for b in 0..now.buckets.len() {
                let grew = u64::from(b == bucket);
                prop_assert_eq!(now.buckets[b], prev.buckets[b] + grew, "bucket {}", b);
            }
            last = snap;
        }
        let fin = last.histogram("ns").unwrap();
        prop_assert_eq!(fin.count, values.len() as u64);
        prop_assert_eq!(fin.buckets.iter().sum::<u64>(), fin.count);
        prop_assert_eq!(fin.max, values.iter().copied().max().unwrap());
    }

    /// Arbitrary events serialize to JSONL and parse back to the same
    /// name, field set, and values (non-finite floats become absent).
    #[test]
    fn events_round_trip_through_jsonl(
        u in 0u64..u64::MAX,
        i in -1_000_000i64..1_000_000,
        f in -1e12f64..1e12,
        b in 0u64..2,
        text in prop::collection::vec(0u32..0xd7ff, 0..24),
    ) {
        let b = b == 1;
        let text: String = text.into_iter().map(|c| char::from_u32(c).unwrap()).collect();
        let sink = MemorySink::new();
        sink.emit(
            &Event::new("prop.case")
                .u64("u", u)
                .i64("i", i)
                .f64("f", f)
                .bool("b", b)
                .str("s", text.clone())
                .f64("gone", f64::NAN),
        );
        let line = sink.lines().pop().unwrap();
        let parsed = jsonl::parse_line(&line).unwrap();
        prop_assert_eq!(parsed.name(), "prop.case");
        // u64 round-trips through the f64 accessor only below 2^53; compare
        // against the same truncation the reader documents.
        prop_assert_eq!(parsed.num("u").unwrap(), u as f64);
        prop_assert_eq!(parsed.num("i").unwrap(), i as f64);
        prop_assert_eq!(parsed.num("f").unwrap(), f);
        prop_assert_eq!(parsed.bool("b"), Some(b));
        prop_assert_eq!(parsed.str("s"), Some(text.as_str()));
        prop_assert_eq!(parsed.num("gone"), None);
        prop_assert_eq!(parsed.fields().len(), 5);
    }

    /// `Event::to_jsonl` → `jsonl::parse_line` preserves every field
    /// exactly, including the `f64_finite` omission rule (a non-finite
    /// value never reaches the line; a finite one round-trips bit for
    /// bit) and strings built purely from JSON-escaped characters.
    #[test]
    fn f64_finite_omission_and_escapes_round_trip(
        finite in -1e300f64..1e300,
        class in 0u8..3,
        escapes in prop::collection::vec(
            prop::sample::select(vec!['"', '\\', '\n', '\r', '\t', '\u{1}', '\u{8}', '\u{c}', '\u{1f}', '/']),
            1..32,
        ),
    ) {
        let nonfinite = match class {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let hostile: String = escapes.into_iter().collect();
        let line = Event::new("prop.finite")
            .f64_finite("kept", finite)
            .f64_finite("omitted", nonfinite)
            .f64("nulled", nonfinite)
            .str("hostile", hostile.clone())
            .to_jsonl();
        // The omitted field must not appear in the serialized line at all,
        // while the plain f64 path serializes non-finite as null.
        prop_assert!(!line.contains("\"omitted\""));
        prop_assert!(line.contains("\"nulled\":null"));
        let parsed = jsonl::parse_line(&line).unwrap();
        prop_assert_eq!(parsed.name(), "prop.finite");
        // Bit-exact round trip for the finite value (Debug formatting is
        // the shortest representation that reparses to the same f64).
        prop_assert_eq!(parsed.num("kept").unwrap().to_bits(), finite.to_bits());
        prop_assert_eq!(parsed.num("omitted"), None);
        prop_assert_eq!(parsed.num("nulled"), None, "null parses as absent");
        prop_assert_eq!(parsed.str("hostile"), Some(hostile.as_str()));
        prop_assert_eq!(parsed.fields().len(), 2);
    }

    /// The bounded sink's ledger is exact for any stream shape and both
    /// overflow policies: after close, `emitted == written + dropped +
    /// sampled`, and the inner sink holds exactly `written` lines.  Under
    /// drop-oldest with no sampling, the newest event is never the drop,
    /// so the last written line is always the last emitted event.
    #[test]
    fn bounded_sink_accounting_is_exact(
        capacity in 1usize..64,
        names in prop::collection::vec(0u8..3, 1..128),
        sample_n in 0u64..6,
        drop_oldest in any::<bool>(),
    ) {
        let policy = if drop_oldest {
            OverflowPolicy::DropOldest
        } else {
            OverflowPolicy::DropNewest
        };
        let mem = Arc::new(MemorySink::new());
        let sink = BoundedSink::builder()
            .capacity(capacity)
            .overflow(policy)
            .sample_one_in("exec.step", sample_n)
            .build(mem.clone());
        for (i, name) in names.iter().enumerate() {
            let name = match name {
                0 => "exec.step",
                1 => "exec.defer",
                _ => "store.fault",
            };
            sink.emit(&Event::new(name).u64("i", i as u64));
        }
        sink.close();
        let stats = sink.stats();
        prop_assert_eq!(stats.emitted, names.len() as u64);
        prop_assert_eq!(stats.emitted, stats.written + stats.dropped + stats.sampled);
        prop_assert_eq!(mem.len() as u64, stats.written);
        if sample_n < 2 {
            prop_assert_eq!(stats.sampled, 0, "n <= 1 keeps everything");
            if drop_oldest {
                let last = mem.lines().pop().unwrap();
                let parsed = jsonl::parse_line(&last).unwrap();
                prop_assert_eq!(parsed.u64("i"), Some(names.len() as u64 - 1),
                    "drop-oldest preserves the stream tail");
            }
        }
    }

    /// The ledger identity survives *adaptive* sampling too: whatever
    /// factors the feedback loop settles on for heavy-hitter names — and
    /// however they rise and decay mid-stream — every emitted event is
    /// accounted for exactly once as written, dropped, or sampled, and
    /// the inner sink holds exactly `written` lines.
    #[test]
    fn adaptive_sampling_keeps_the_ledger_exact(
        capacity in 1usize..16,
        names in prop::collection::vec(0u8..8, 1..256),
        window in 0u64..64,
        drop_oldest in any::<bool>(),
    ) {
        let policy = if drop_oldest {
            OverflowPolicy::DropOldest
        } else {
            OverflowPolicy::DropNewest
        };
        let mem = Arc::new(MemorySink::new());
        let sink = BoundedSink::builder()
            .capacity(capacity)
            .overflow(policy)
            .adaptive_sampling(window)
            .build(mem.clone());
        for (i, name) in names.iter().enumerate() {
            // Skewed: most draws hit `exec.step`, so the tiny queue
            // overflows and the feedback loop raises its factor.
            let name = match name {
                0 => "exec.defer",
                1 => "store.fault",
                _ => "exec.step",
            };
            sink.emit(&Event::new(name).u64("i", i as u64));
        }
        let mid_factor = sink.adaptive_factor("exec.step");
        prop_assert!(mid_factor >= 1, "factors never fall below 1");
        sink.close();
        let stats = sink.stats();
        prop_assert_eq!(stats.emitted, names.len() as u64);
        prop_assert_eq!(
            stats.emitted,
            stats.written + stats.dropped + stats.sampled,
            "adaptive ledger must balance: {:?}",
            stats
        );
        prop_assert_eq!(mem.len() as u64, stats.written);
    }
}
