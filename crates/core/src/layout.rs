//! Workload-driven disk-layout advice (§7).
//!
//! "Combining this analysis with workload information will lead to
//! techniques for smart buffer management."  Given a representative set of
//! historical batches, [`aggregate_importance_ranking`] scores every
//! coefficient by its total importance across the workload; feeding that
//! ranking to `batchbb_storage::BlockStore::create_ranked` lays hot
//! coefficients out contiguously, so future progressive scans are close to
//! sequential.
//!
//! Measured behaviour (see the tests and `obs1_io_sharing --block-size`):
//! a layout trained on the batch it serves is near-perfectly sequential
//! (~420× fewer block reads than key order); a layout trained on *other*
//! batches of the same family still transfers — it beats key order — but
//! a workload-oblivious coarse-first (level-major) layout remains the more
//! robust default for ad hoc queries.  §7's conjecture holds strongest
//! exactly where workload information is real.

use std::collections::HashMap;

use batchbb_penalty::Penalty;
use batchbb_tensor::CoeffKey;

use crate::{BatchQueries, MasterList};

/// Sums the per-coefficient importance over a training workload and
/// returns `key → rank` (0 = layout first).  Coefficients never seen by
/// the workload are absent; layouts should place them after all ranked
/// keys (e.g. `rank.get(k).copied().unwrap_or(usize::MAX)`).
pub fn aggregate_importance_ranking(
    workload: &[(&BatchQueries, &dyn Penalty)],
) -> HashMap<CoeffKey, usize> {
    let mut scores: HashMap<CoeffKey, f64> = HashMap::new();
    for (batch, penalty) in workload {
        let master = MasterList::build(batch);
        for (key, column) in master.iter() {
            let col: Vec<(usize, f64)> = column.iter().map(|&(i, v)| (i as usize, v)).collect();
            *scores.entry(*key).or_insert(0.0) += penalty.importance(&col, batch.len());
        }
    }
    let mut ranked: Vec<(CoeffKey, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked
        .into_iter()
        .enumerate()
        .map(|(rank, (k, _))| (k, rank))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgressiveExecutor;
    use batchbb_penalty::Sse;
    use batchbb_query::{partition, LinearStrategy, RangeSum, WaveletStrategy};
    use batchbb_relation::synth;
    #[cfg(unix)]
    use batchbb_storage::{BlockLayout, BlockStore, CoefficientStore};
    use batchbb_wavelet::Wavelet;

    #[cfg(unix)]
    #[test]
    fn layout_training_hierarchy() {
        // self-trained ≪ transfer-trained < key-order: a layout built for
        // the exact batch is near-sequential; one trained on sibling
        // batches still transfers; naive key order trails.
        let dfd = synth::clustered(2, 7, 120_000, 4, 9).to_frequency_distribution();
        let domain = dfd.schema().domain();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let entries = strategy.transform_data(dfd.tensor());

        let make_batch = |seed: u64| {
            let queries: Vec<RangeSum> = partition::random_partition(&domain, 64, seed)
                .into_iter()
                .map(RangeSum::count)
                .collect();
            BatchQueries::rewrite(&strategy, queries, &domain).unwrap()
        };
        let trains: Vec<BatchQueries> = (1..=6).map(make_batch).collect();
        let pairs: Vec<(&BatchQueries, &dyn Penalty)> = trains
            .iter()
            .map(|b| (b, &Sse as &dyn batchbb_penalty::Penalty))
            .collect();
        let transfer = aggregate_importance_ranking(&pairs);
        let test = make_batch(99);
        let own = aggregate_importance_ranking(&[(&test, &Sse)]);

        let tmp = std::env::temp_dir();
        let physical = |name: &str, store: &BlockStore| {
            let mut exec = ProgressiveExecutor::new(&test, &Sse, store);
            exec.run_to_end();
            let reads = store.stats().physical_reads;
            let _ = name;
            reads
        };
        let p1 = tmp.join(format!("batchbb-advisor-self-{}", std::process::id()));
        let p2 = tmp.join(format!("batchbb-advisor-xfer-{}", std::process::id()));
        let p3 = tmp.join(format!("batchbb-advisor-key-{}", std::process::id()));
        let self_store = BlockStore::create_ranked(&p1, entries.clone(), 64, 8, |k| {
            own.get(k).copied().unwrap_or(usize::MAX)
        })
        .unwrap();
        let xfer_store = BlockStore::create_ranked(&p2, entries.clone(), 64, 8, |k| {
            transfer.get(k).copied().unwrap_or(usize::MAX)
        })
        .unwrap();
        let key_store = BlockStore::create(&p3, entries, 64, 8, BlockLayout::KeyOrder).unwrap();

        let self_reads = physical("self", &self_store);
        let xfer_reads = physical("xfer", &xfer_store);
        let key_reads = physical("key", &key_store);
        assert!(
            self_reads * 10 < key_reads,
            "self-trained layout should be near-sequential: {self_reads} vs {key_reads}"
        );
        assert!(
            xfer_reads < key_reads,
            "transfer-trained layout should beat key order: {xfer_reads} vs {key_reads}"
        );
        for p in [p1, p2, p3] {
            std::fs::remove_file(&p).unwrap();
        }
    }

    #[test]
    fn ranking_orders_by_total_importance() {
        let dfd = synth::uniform(2, 4, 2_000, 3).to_frequency_distribution();
        let domain = dfd.schema().domain();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let queries: Vec<RangeSum> = partition::grid_partition(&domain, &[2, 2])
            .into_iter()
            .map(RangeSum::count)
            .collect();
        let batch = BatchQueries::rewrite(&strategy, queries, &domain).unwrap();
        let ranking = aggregate_importance_ranking(&[(&batch, &Sse)]);
        // rank 0 exists and every rank below the count is assigned once
        let mut ranks: Vec<usize> = ranking.values().copied().collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..ranking.len()).collect::<Vec<_>>());
        // the single most important key under one batch is the one the
        // executor retrieves first
        let dfd_store =
            batchbb_storage::MemoryStore::from_entries(strategy.transform_data(dfd.tensor()));
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &dfd_store);
        let first = exec.step().unwrap().key;
        assert_eq!(ranking[&first], 0);
    }
}
