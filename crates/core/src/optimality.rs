//! Diagnostics for the paper's optimality theorems.
//!
//! Theorem 1: among all B-term approximations of a batch, the biggest-B set
//! (top importance) has the smallest worst-case penalty, which equals
//! `K^α · max_{ξ∉Ξ} ι_p(ξ)` with `K = Σ|Δ̂[ξ]|`.
//!
//! Theorem 2: over data vectors drawn uniformly from the unit sphere, the
//! expected quadratic penalty of a B-term approximation is
//! `(N^d − 1)^{-1} Σ_{ξ∉Ξ} ι_p(ξ)` — again minimized by biggest-B.
//!
//! The functions here compute both quantities for an arbitrary retained
//! set `Ξ`, so tests and harnesses can check the implementation *is* the
//! optimum (see `tests/optimality.rs` in this crate).

use std::collections::HashSet;

use batchbb_penalty::Penalty;
use batchbb_tensor::CoeffKey;

use crate::{BatchQueries, MasterList};

/// `(key, ι_p(key))` for every coefficient the batch touches, sorted by
/// decreasing importance (ties broken by key).
pub fn importance_ranking(batch: &BatchQueries, penalty: &dyn Penalty) -> Vec<(CoeffKey, f64)> {
    let master = MasterList::build(batch);
    let mut ranked: Vec<(CoeffKey, f64)> = master
        .iter()
        .map(|(key, column)| {
            let col: Vec<(usize, f64)> = column.iter().map(|&(i, v)| (i as usize, v)).collect();
            (*key, penalty.importance(&col, batch.len()))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked
}

/// The biggest-B retained set: the `b` most important coefficients.
pub fn biggest_b_set(batch: &BatchQueries, penalty: &dyn Penalty, b: usize) -> HashSet<CoeffKey> {
    importance_ranking(batch, penalty)
        .into_iter()
        .take(b)
        .map(|(k, _)| k)
        .collect()
}

/// Theorem 1's worst-case penalty of the B-term approximation retaining
/// `kept`: `K^α · max_{ξ∉kept} ι_p(ξ)` (zero when everything is kept).
pub fn worst_case_penalty(
    batch: &BatchQueries,
    penalty: &dyn Penalty,
    kept: &HashSet<CoeffKey>,
    k_abs_sum: f64,
) -> f64 {
    let worst = importance_ranking(batch, penalty)
        .into_iter()
        .filter(|(k, _)| !kept.contains(k))
        .map(|(_, iota)| iota)
        .fold(0.0f64, f64::max);
    k_abs_sum.powf(penalty.homogeneity()) * worst
}

/// Theorem 2's expected penalty over the unit sphere of data vectors:
/// `(n_total − 1)^{-1} · Σ_{ξ∉kept} ι_p(ξ)`.
///
/// Only meaningful for quadratic penalties (homogeneity 2); `n_total` is
/// the domain size `N^d`.
pub fn expected_penalty(
    batch: &BatchQueries,
    penalty: &dyn Penalty,
    kept: &HashSet<CoeffKey>,
    n_total: usize,
) -> f64 {
    assert_eq!(
        penalty.homogeneity(),
        2.0,
        "Theorem 2 applies to quadratic penalties"
    );
    assert!(n_total > 1, "need a non-trivial domain");
    let tail: f64 = importance_ranking(batch, penalty)
        .into_iter()
        .filter(|(k, _)| !kept.contains(k))
        .map(|(_, iota)| iota)
        .sum();
    tail / (n_total as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_penalty::Sse;
    use batchbb_query::{HyperRect, RangeSum, WaveletStrategy};
    use batchbb_tensor::Shape;
    use batchbb_wavelet::Wavelet;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn small_batch() -> (BatchQueries, Shape) {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let queries = vec![
            RangeSum::count(HyperRect::new(vec![0, 0], vec![3, 7])),
            RangeSum::count(HyperRect::new(vec![4, 0], vec![7, 7])),
            RangeSum::count(HyperRect::new(vec![2, 2], vec![5, 5])),
        ];
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        (
            BatchQueries::rewrite(&strategy, queries, &shape).unwrap(),
            shape,
        )
    }

    #[test]
    fn ranking_is_sorted() {
        let (batch, _) = small_batch();
        let ranked = importance_ranking(&batch, &Sse);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn biggest_b_minimizes_worst_case_among_random_sets() {
        let (batch, _) = small_batch();
        let all: Vec<CoeffKey> = importance_ranking(&batch, &Sse)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let b = all.len() / 3;
        let best = biggest_b_set(&batch, &Sse, b);
        let best_wc = worst_case_penalty(&batch, &Sse, &best, 1.0);
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..50 {
            let mut other: Vec<CoeffKey> = all.clone();
            // random b-subset
            for i in 0..b {
                let j = rng.gen_range(i..other.len());
                other.swap(i, j);
            }
            let set: HashSet<CoeffKey> = other[..b].iter().copied().collect();
            let wc = worst_case_penalty(&batch, &Sse, &set, 1.0);
            assert!(
                best_wc <= wc + 1e-12,
                "Theorem 1 violated: biggest-B {best_wc} > random {wc}"
            );
        }
    }

    #[test]
    fn biggest_b_minimizes_expected_among_random_sets() {
        let (batch, shape) = small_batch();
        let all: Vec<CoeffKey> = importance_ranking(&batch, &Sse)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let b = all.len() / 2;
        let best = biggest_b_set(&batch, &Sse, b);
        let best_e = expected_penalty(&batch, &Sse, &best, shape.len());
        let mut rng = SmallRng::seed_from_u64(29);
        for _ in 0..50 {
            let mut other: Vec<CoeffKey> = all.clone();
            for i in 0..b {
                let j = rng.gen_range(i..other.len());
                other.swap(i, j);
            }
            let set: HashSet<CoeffKey> = other[..b].iter().copied().collect();
            let e = expected_penalty(&batch, &Sse, &set, shape.len());
            assert!(
                best_e <= e + 1e-12,
                "Theorem 2 violated: biggest-B {best_e} > random {e}"
            );
        }
    }

    #[test]
    fn keeping_everything_zeroes_both_bounds() {
        let (batch, shape) = small_batch();
        let all: HashSet<CoeffKey> = importance_ranking(&batch, &Sse)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(worst_case_penalty(&batch, &Sse, &all, 5.0), 0.0);
        assert_eq!(expected_penalty(&batch, &Sse, &all, shape.len()), 0.0);
    }
}
