//! The *data approximation* baseline (§1.1).
//!
//! Prior wavelet work (\[17\] Vitter & Wang, \[1\] Chakrabarti et al.) keeps a
//! compressed synopsis — the `B` largest coefficients of the *data* — and
//! answers every query against it.  The paper's position is that "there is
//! no reason to expect a general relation to have a good wavelet
//! approximation", and that approximating the *queries* instead keeps
//! exactness reachable and the error controllable per batch.
//!
//! This module implements the baseline so the claim is testable: build a
//! [`CompressedView`] holding the top-`B` data coefficients, evaluate any
//! rewritten batch against it, and compare with Batch-Biggest-B at the
//! same budget `B` (`ablation_data_vs_query` harness).  On
//! wavelet-compressible data the synopsis is competitive; on rough data it
//! hits an error floor that no amount of query-side work removes, while
//! Batch-Biggest-B converges to exact answers.

use batchbb_storage::MemoryStore;
use batchbb_tensor::CoeffKey;

use crate::BatchQueries;

/// A lossy synopsis: the `B` largest-magnitude coefficients of the data.
pub struct CompressedView {
    store: MemoryStore,
    kept: usize,
    dropped_energy: f64,
    total_energy: f64,
}

impl CompressedView {
    /// Keeps the top `b` coefficients by |value| (ties broken by key).
    pub fn new(mut entries: Vec<(CoeffKey, f64)>, b: usize) -> Self {
        entries.sort_by(|x, y| {
            (y.1 * y.1)
                .total_cmp(&(x.1 * x.1))
                .then_with(|| x.0.cmp(&y.0))
        });
        let total_energy: f64 = entries.iter().map(|&(_, v)| v * v).sum();
        let kept = b.min(entries.len());
        let dropped_energy: f64 = entries[kept..].iter().map(|&(_, v)| v * v).sum();
        entries.truncate(kept);
        CompressedView {
            store: MemoryStore::from_entries(entries),
            kept,
            dropped_energy,
            total_energy,
        }
    }

    /// Number of coefficients retained.
    pub fn kept(&self) -> usize {
        self.kept
    }

    /// Fraction of the data's L2 energy lost to truncation — the
    /// compressibility of the dataset under this basis. Near 0 for smooth
    /// data, near `1 − B/N` for white noise.
    pub fn energy_loss(&self) -> f64 {
        if self.total_energy == 0.0 {
            0.0
        } else {
            self.dropped_energy / self.total_energy
        }
    }

    /// The truncated store (usable anywhere a
    /// [`batchbb_storage::CoefficientStore`] is).
    pub fn store(&self) -> &MemoryStore {
        &self.store
    }

    /// Evaluates a rewritten batch fully against the synopsis.  This is
    /// the baseline's best case: unlimited query-side work, but every
    /// truncated coefficient contributes its full error.
    pub fn evaluate(&self, batch: &BatchQueries) -> Vec<f64> {
        use batchbb_storage::CoefficientStore;
        batch
            .coefficients()
            .iter()
            .map(|coeffs| {
                coeffs
                    .entries()
                    .iter()
                    .filter_map(|(k, v)| self.store.get(k).map(|w| v * w))
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, MasterList, ProgressiveExecutor};
    use batchbb_penalty::Sse;
    use batchbb_query::{partition, LinearStrategy, RangeSum, WaveletStrategy};
    use batchbb_storage::MemoryStore;
    use batchbb_tensor::{Shape, Tensor};
    use batchbb_wavelet::Wavelet;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    type Fixture = (
        Tensor,
        Vec<RangeSum>,
        BatchQueries,
        Vec<(CoeffKey, f64)>,
        Vec<f64>,
    );

    fn setup(data: Tensor, cells: usize) -> Fixture {
        let shape = data.shape().clone();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let queries: Vec<RangeSum> = partition::dyadic_partition(&shape, cells, 3)
            .into_iter()
            .map(RangeSum::count)
            .collect();
        let exact: Vec<f64> = queries.iter().map(|q| q.eval_direct(&data)).collect();
        let batch = BatchQueries::rewrite(&strategy, queries.clone(), &shape).unwrap();
        let entries = strategy.transform_data(&data);
        (data, queries, batch, entries, exact)
    }

    #[test]
    fn full_view_is_exact() {
        let shape = Shape::new(vec![16, 16]).unwrap();
        let data = Tensor::from_fn(shape, |ix| ((ix[0] * 3 + ix[1]) % 5) as f64);
        let (_, _, batch, entries, exact) = setup(data, 8);
        let view = CompressedView::new(entries.clone(), entries.len());
        assert_eq!(view.energy_loss(), 0.0);
        for (e, x) in view.evaluate(&batch).iter().zip(&exact) {
            assert!((e - x).abs() < 1e-6 * x.abs().max(1.0));
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        // A smooth field: most energy in few coefficients.
        let shape = Shape::new(vec![32, 32]).unwrap();
        let data = Tensor::from_fn(shape, |ix| {
            (ix[0] as f64 / 8.0).sin() + (ix[1] as f64 / 11.0).cos() + 3.0
        });
        let (_, _, batch, entries, exact) = setup(data, 16);
        let view = CompressedView::new(entries, 64);
        assert!(view.energy_loss() < 0.01, "loss {}", view.energy_loss());
        let mre = metrics::mean_relative_error(&view.evaluate(&batch), &exact);
        assert!(mre < 0.05, "synopsis should work on smooth data, mre {mre}");
    }

    #[test]
    fn rough_data_defeats_data_approximation_but_not_query_approximation() {
        // White-noise-ish data: the paper's adversarial case for synopses.
        let shape = Shape::new(vec![32, 32]).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let data = Tensor::from_fn(shape, |_| rng.gen_range(0.0..10.0));
        let (_, _, batch, entries, exact) = setup(data, 16);
        let master = MasterList::build(&batch).len();
        let b = master / 2;

        // data approximation at budget b: irreducible error floor
        let view = CompressedView::new(entries.clone(), b);
        let data_mre = metrics::mean_relative_error(&view.evaluate(&batch), &exact);

        // query approximation at the same budget b, then to completion
        let store = MemoryStore::from_entries(entries);
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        exec.run(b);
        let query_mre_at_b = metrics::mean_relative_error(exec.estimates(), &exact);
        exec.run_to_end();
        let query_mre_final = metrics::mean_relative_error(exec.estimates(), &exact);

        assert!(
            view.energy_loss() > 0.05,
            "noise must not compress, loss {}",
            view.energy_loss()
        );
        assert!(
            query_mre_final < 1e-10,
            "query approximation reaches exactness, got {query_mre_final}"
        );
        assert!(
            data_mre > query_mre_final,
            "synopsis has an error floor: {data_mre}"
        );
        // At the matched budget, both are approximate; the decisive
        // difference is the floor, asserted above.
        let _ = query_mre_at_b;
    }

    #[test]
    fn kept_respects_budget() {
        let entries = vec![
            (CoeffKey::one(0), 3.0),
            (CoeffKey::one(1), -10.0),
            (CoeffKey::one(2), 1.0),
        ];
        let view = CompressedView::new(entries, 2);
        assert_eq!(view.kept(), 2);
        use batchbb_storage::CoefficientStore;
        assert_eq!(view.store().get(&CoeffKey::one(1)), Some(-10.0));
        assert_eq!(
            view.store().get(&CoeffKey::one(2)),
            None,
            "smallest dropped"
        );
        assert!((view.energy_loss() - 1.0 / 110.0).abs() < 1e-12);
    }
}
