//! Error metrics used throughout the paper's experiments (§6).

use batchbb_penalty::Penalty;

/// Mean relative error over the batch (Figure 5's vertical axis).
///
/// Queries with exact result zero are skipped unless the estimate is also
/// nonzero, in which case the error counts as 1 (fully wrong).
pub fn mean_relative_error(estimates: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(estimates.len(), exact.len(), "batch size mismatch");
    assert!(!exact.is_empty(), "empty batch has no error");
    let mut total = 0.0;
    let mut counted = 0usize;
    for (&e, &x) in estimates.iter().zip(exact.iter()) {
        if x != 0.0 {
            total += ((e - x) / x).abs();
            counted += 1;
        } else if e.abs() > 1e-9 {
            total += 1.0;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Normalized SSE: "the SSE divided by the sum of square query results"
/// (Figure 6).
pub fn normalized_sse(estimates: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(estimates.len(), exact.len(), "batch size mismatch");
    let sse: f64 = estimates
        .iter()
        .zip(exact.iter())
        .map(|(&e, &x)| (e - x) * (e - x))
        .sum();
    let scale: f64 = exact.iter().map(|&x| x * x).sum();
    assert!(
        scale > 0.0,
        "cannot normalize against all-zero exact results"
    );
    sse / scale
}

/// Normalized penalty: `p(estimates − exact) / p(exact)` — the
/// generalization of normalized SSE used for Figure 7's cursored SSE.
pub fn normalized_penalty(penalty: &dyn Penalty, estimates: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(estimates.len(), exact.len(), "batch size mismatch");
    let errors: Vec<f64> = estimates
        .iter()
        .zip(exact.iter())
        .map(|(&e, &x)| e - x)
        .collect();
    let scale = penalty.evaluate(exact);
    assert!(
        scale > 0.0,
        "cannot normalize against zero-penalty exact results"
    );
    penalty.evaluate(&errors) / scale
}

/// One sample of a progressive run, as captured by [`trace_progression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Coefficients retrieved so far.
    pub retrieved: usize,
    /// Mean relative error against the exact answers.
    pub mean_relative_error: f64,
    /// Normalized SSE against the exact answers.
    pub normalized_sse: f64,
    /// Normalized penalty (under the traced penalty) against the exact
    /// answers.
    pub normalized_penalty: f64,
    /// Theorem 1's worst-case bound `K^α·ι(next)` at this point.
    pub worst_case_bound: f64,
}

/// Runs the executor through `budgets` (ascending retrieval counts),
/// sampling the error metrics at each — the series behind every figure in
/// §6.  `k_abs_sum` is `Σ|Δ̂|` for the bound column (pass 0.0 to skip).
pub fn trace_progression(
    exec: &mut crate::ProgressiveExecutor<'_>,
    penalty: &dyn Penalty,
    exact: &[f64],
    budgets: &[usize],
    k_abs_sum: f64,
) -> Vec<TracePoint> {
    let mut out = Vec::with_capacity(budgets.len());
    for &b in budgets {
        if b > exec.retrieved() {
            exec.run(b - exec.retrieved());
        }
        out.push(TracePoint {
            retrieved: exec.retrieved(),
            mean_relative_error: mean_relative_error(exec.estimates(), exact),
            normalized_sse: normalized_sse(exec.estimates(), exact),
            normalized_penalty: normalized_penalty(penalty, exec.estimates(), exact),
            worst_case_bound: exec.worst_case_bound(k_abs_sum),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_penalty::{DiagonalQuadratic, Sse};

    #[test]
    fn mre_of_exact_is_zero() {
        assert_eq!(mean_relative_error(&[2.0, 4.0], &[2.0, 4.0]), 0.0);
    }

    #[test]
    fn mre_averages_relative_errors() {
        // errors: 50% and 10% -> mean 30%
        let got = mean_relative_error(&[1.0, 9.0], &[2.0, 10.0]);
        assert!((got - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mre_handles_zero_exact() {
        assert_eq!(mean_relative_error(&[0.0, 1.0], &[0.0, 1.0]), 0.0);
        assert_eq!(mean_relative_error(&[5.0], &[0.0]), 1.0);
        assert_eq!(
            mean_relative_error(&[1e-12], &[0.0]),
            0.0,
            "fp dust ignored"
        );
    }

    #[test]
    fn normalized_sse_scales() {
        // err (1,0), exact (2,1): 1 / 5
        assert!((normalized_sse(&[3.0, 1.0], &[2.0, 1.0]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn normalized_penalty_generalizes_sse() {
        let est = [3.0, 1.5];
        let exact = [2.0, 1.0];
        assert!(
            (normalized_penalty(&Sse, &est, &exact) - normalized_sse(&est, &exact)).abs() < 1e-12
        );
        let w = DiagonalQuadratic::new(vec![10.0, 1.0]);
        // p(err) = 10·1 + 0.25, p(exact) = 40 + 1
        let expect = 10.25 / 41.0;
        assert!((normalized_penalty(&w, &est, &exact) - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn size_mismatch_panics() {
        let _ = normalized_sse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn trace_progression_samples_budgets() {
        use crate::{BatchQueries, ProgressiveExecutor};
        use batchbb_query::{HyperRect, LinearStrategy, RangeSum, WaveletStrategy};
        use batchbb_storage::MemoryStore;
        use batchbb_tensor::{Shape, Tensor};
        use batchbb_wavelet::Wavelet;

        let shape = Shape::new(vec![16, 16]).unwrap();
        let data = Tensor::from_fn(shape.clone(), |ix| ((ix[0] + ix[1]) % 3) as f64 + 1.0);
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let queries = vec![
            RangeSum::count(HyperRect::new(vec![0, 0], vec![7, 15])),
            RangeSum::count(HyperRect::new(vec![8, 0], vec![15, 15])),
        ];
        let exact: Vec<f64> = queries.iter().map(|q| q.eval_direct(&data)).collect();
        let batch = BatchQueries::rewrite(&strategy, queries, &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let k = store.abs_sum();
        let trace = trace_progression(&mut exec, &Sse, &exact, &[1, 2, 1000], k);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].retrieved, 1);
        assert!(trace.last().unwrap().normalized_sse < 1e-20, "exact at end");
        assert_eq!(trace.last().unwrap().worst_case_bound, 0.0);
        // the bound is non-increasing along the trace
        assert!(trace
            .windows(2)
            .all(|w| w[1].worst_case_bound <= w[0].worst_case_bound));
    }
}
