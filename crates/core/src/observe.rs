//! Observability hooks for the progressive pipeline.
//!
//! Every evaluation engine in this crate — [`crate::ProgressiveExecutor`],
//! the [`crate::round_robin::RoundRobin`] baseline, and the bounded
//! two-pass variant in [`crate::bounded`] — can carry an [`ExecObserver`]
//! that emits one uniform event schema per retrieval, so trajectories from
//! different engines are directly comparable (and replayable by the
//! `progress_report` harness in `batchbb-bench`).  Query rewriting is
//! observed separately through [`RewriteObserver`].
//!
//! Observation is strictly read-only: with the default
//! [`batchbb_obs::NullSink`] the instrumented paths produce output
//! bit-for-bit identical to uninstrumented runs (the e2e tests pin this
//! down).  The full event schema is documented in DESIGN.md §8.

use std::sync::Arc;

use batchbb_obs::{
    span_end_event, span_start_event, Counter, Event, EventSink, Gauge, Histogram, Lifecycle,
    MetricsRegistry, NullSink, Phase, PhaseGuard, SpanTimer,
};
use batchbb_storage::{FaultStats, StorageError};
use batchbb_tensor::CoeffKey;

use crate::StepInfo;

/// What one observed retrieval step looked like, as reported by an engine
/// to [`ExecObserver::on_step`].
///
/// Engines that do not track a quantity pass `f64::NAN` (for the
/// importance masses) or `None` (for the unresolved maximum); the
/// corresponding event fields are then omitted rather than fabricated.
pub(crate) struct StepObservation<'a> {
    /// `"retrieved"` for heap progress, `"recovered"` for a deferred
    /// coefficient that finally resolved.
    pub kind: &'static str,
    /// The retrieval itself.
    pub info: &'a StepInfo,
    /// Coefficients still pending in normal progression order.
    pub pending: usize,
    /// Coefficients parked in the deferral queue.
    pub deferred: usize,
    /// Σ ι_p over pending coefficients (NaN when untracked).
    pub remaining_importance: f64,
    /// Σ ι_p over deferred coefficients (NaN when untracked).
    pub deferred_importance: f64,
    /// `max ι_p` over pending ∪ deferred, `None` once exact (Theorem 1's
    /// `ι_p(ξ′)`); engines without importance tracking also pass `None`
    /// *with* NaN masses, which suppresses the bound fields entirely.
    pub max_unresolved: Option<f64>,
    /// The penalty's homogeneity degree α (for `K^α`).
    pub homogeneity: f64,
    /// Cumulative retrievals, including this one.
    pub retrieved: usize,
    /// Cumulative fault counters after this step.
    pub fault: FaultStats,
    /// Wall-clock nanoseconds the retrieval took (store time only).
    pub latency_ns: u64,
}

/// Observer attached to an evaluation engine: counts and times every
/// retrieval into a [`MetricsRegistry`] and emits `exec.*` trace events to
/// an [`EventSink`].
///
/// The default sink is [`NullSink`], which disables event construction
/// entirely; metrics are always maintained (they are a handful of relaxed
/// atomic adds per step).
pub struct ExecObserver {
    sink: Arc<dyn EventSink>,
    registry: Arc<MetricsRegistry>,
    engine: &'static str,
    n_total: Option<usize>,
    k_abs_sum: Option<f64>,
    lifecycle: Option<Lifecycle>,
    steps: Counter,
    deferrals: Counter,
    recoveries: Counter,
    prefetch_batches: Counter,
    prefetch_keys: Counter,
    parks: Counter,
    pending_depth: Gauge,
    deferred_depth: Gauge,
    step_ns: Histogram,
    prefetch_ns: Histogram,
}

impl ExecObserver {
    /// An observer emitting to `sink`, with a fresh private registry and
    /// the `"progressive"` engine label.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        Self::build(sink, Arc::new(MetricsRegistry::new()), "progressive")
    }

    /// An observer that records metrics but emits no events.
    pub fn metrics_only() -> Self {
        Self::new(Arc::new(NullSink))
    }

    fn build(
        sink: Arc<dyn EventSink>,
        registry: Arc<MetricsRegistry>,
        engine: &'static str,
    ) -> Self {
        let metric = |suffix: &str| format!("{engine}.{suffix}");
        ExecObserver {
            steps: registry.counter(&metric("steps")),
            deferrals: registry.counter(&metric("deferrals")),
            recoveries: registry.counter(&metric("recoveries")),
            prefetch_batches: registry.counter(&metric("prefetch.batches")),
            prefetch_keys: registry.counter(&metric("prefetch.keys")),
            parks: registry.counter(&metric("parks")),
            pending_depth: registry.gauge(&metric("pending")),
            deferred_depth: registry.gauge(&metric("deferred")),
            step_ns: registry.histogram(&metric("step_ns")),
            prefetch_ns: registry.histogram(&metric("prefetch_ns")),
            sink,
            registry,
            engine,
            n_total: None,
            k_abs_sum: None,
            lifecycle: None,
        }
    }

    /// Uses `registry` (shared with other components) instead of a private
    /// one. Metric names are re-registered under the current engine label.
    pub fn with_registry(self, registry: Arc<MetricsRegistry>) -> Self {
        let mut built = Self::build(self.sink, registry, self.engine);
        built.n_total = self.n_total;
        built.k_abs_sum = self.k_abs_sum;
        built.lifecycle = self.lifecycle;
        built
    }

    /// Relabels the engine (`"progressive"`, `"round_robin"`, `"bounded"`,
    /// …); the label prefixes metric names and tags every event.
    pub fn with_engine(self, engine: &'static str) -> Self {
        let mut built = Self::build(self.sink, self.registry, engine);
        built.n_total = self.n_total;
        built.k_abs_sum = self.k_abs_sum;
        built.lifecycle = self.lifecycle;
        built
    }

    /// Attaches the batch's lifecycle recorder (causal tracing, DESIGN.md
    /// §14). The executor then carves [`Phase::StoreWait`] out of the
    /// batch's executing time around every store call and emits a
    /// `prefetch` span per prefetch window under the batch's root span.
    /// Without this the tracing sites stay `None`-guarded no-ops.
    pub fn with_lifecycle(mut self, lifecycle: Lifecycle) -> Self {
        self.lifecycle = Some(lifecycle);
        self
    }

    /// Enables the per-step penalty-bound fields: `n_total` is the domain
    /// size `N^d` (Theorem 2's denominator) and `k_abs_sum` the data's
    /// coefficient ℓ¹-norm `K` (Theorem 1's scale factor).
    pub fn with_bounds(mut self, n_total: usize, k_abs_sum: f64) -> Self {
        assert!(n_total > 1, "need a non-trivial domain");
        self.n_total = Some(n_total);
        self.k_abs_sum = Some(k_abs_sum);
        self
    }

    /// The registry this observer records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The sink this observer emits to.
    pub fn sink(&self) -> &Arc<dyn EventSink> {
        &self.sink
    }

    /// Starts a span timer — but only when someone will look at the
    /// reading, so unobserved paths never touch the clock.
    pub(crate) fn maybe_timer(observer: &Option<ExecObserver>) -> Option<SpanTimer> {
        observer.as_ref().map(|_| SpanTimer::start())
    }

    /// Brackets a store call as [`Phase::StoreWait`] in the batch's
    /// lifecycle: the guard enters the phase now and restores the previous
    /// phase (normally `Executing`) when dropped. `None` — a free no-op —
    /// unless a lifecycle recorder is attached.
    pub(crate) fn store_wait_scope(observer: &Option<ExecObserver>) -> Option<PhaseGuard> {
        observer
            .as_ref()
            .and_then(|o| o.lifecycle.as_ref())
            .map(|lifecycle| PhaseGuard::enter(lifecycle, Phase::StoreWait))
    }

    pub(crate) fn on_start(&self, batch_size: usize, coefficients: usize) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(
            &Event::new("exec.start")
                .str("engine", self.engine)
                .u64("batch", batch_size as u64)
                .u64("coefficients", coefficients as u64)
                .f64_finite(
                    "n_total",
                    self.n_total.map(|n| n as f64).unwrap_or(f64::NAN),
                )
                .f64_finite("k_abs_sum", self.k_abs_sum.unwrap_or(f64::NAN)),
        );
    }

    pub(crate) fn on_step(&self, o: &StepObservation<'_>) {
        self.steps.inc();
        if o.kind == "recovered" {
            self.recoveries.inc();
        }
        self.step_ns.record(o.latency_ns);
        self.pending_depth.set(o.pending as i64);
        self.deferred_depth.set(o.deferred as i64);
        if !self.sink.enabled() {
            return;
        }
        let unresolved_mass = o.remaining_importance + o.deferred_importance;
        let expected_penalty = match self.n_total {
            Some(n) => unresolved_mass / (n as f64 - 1.0),
            None => f64::NAN,
        };
        // Theorem 1's bound: K^α · max ι_p over everything unresolved.
        // `max_unresolved = None` means either "exact" (finite masses → the
        // bound is a genuine 0) or "not tracked" (NaN masses → omit).
        let worst_case_bound = match (self.k_abs_sum, o.max_unresolved) {
            (Some(k), Some(iota)) => k.powf(o.homogeneity) * iota,
            (Some(_), None) if unresolved_mass == 0.0 => 0.0,
            _ => f64::NAN,
        };
        self.sink.emit(
            &Event::new("exec.step")
                .str("engine", self.engine)
                .str("kind", o.kind)
                .u64("step", o.retrieved as u64)
                .str("key", o.info.key.to_string())
                .f64("importance", o.info.importance)
                .f64("value", o.info.value)
                .u64("queries", o.info.queries_advanced as u64)
                .u64("pending", o.pending as u64)
                .u64("deferred", o.deferred as u64)
                .f64_finite("remaining_iota", o.remaining_importance)
                .f64_finite("deferred_iota", o.deferred_importance)
                .f64_finite("expected_penalty", expected_penalty)
                .f64_finite("worst_case_bound", worst_case_bound)
                .u64("attempts", o.fault.attempts)
                .u64("retries", o.fault.retries)
                .u64("backoff_ticks", o.fault.backoff_ticks)
                .u64("latency_ns", o.latency_ns),
        );
    }

    /// One batched prefetch of `batch` coefficients (`ok = false` when the
    /// fetch failed as a whole and the executor fell back to singleton
    /// retrievals).
    pub(crate) fn on_prefetch(&self, batch: usize, ok: bool, latency_ns: u64) {
        self.prefetch_batches.inc();
        self.prefetch_keys.add(batch as u64);
        self.prefetch_ns.record(latency_ns);
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(
            &Event::new("exec.prefetch")
                .str("engine", self.engine)
                .u64("batch", batch as u64)
                .bool("ok", ok)
                .u64("latency_ns", latency_ns),
        );
        // With a lifecycle attached, the prefetch window also lands as a
        // causal span under the batch's root: the window resolved *now*
        // and covered `latency_ns` (the overlap latency for parked async
        // fetches), so its start is reconstructed backwards.
        if let Some(lifecycle) = &self.lifecycle {
            if let Ok(recorder) = lifecycle.lock() {
                let tracer = recorder.tracer();
                let ctx = tracer.child_context(recorder.root_span());
                let end = tracer.now_ns();
                let start = end.saturating_sub(latency_ns);
                self.sink.emit(
                    &span_start_event("prefetch", ctx, start)
                        .u64("keys", batch as u64)
                        .bool("ok", ok),
                );
                self.sink.emit(&span_end_event(ctx, end));
            }
        }
    }

    /// A batched prefetch of `batch` coefficients was submitted to an
    /// asynchronous store and is still in flight: the executor parked
    /// instead of blocking.  `heap` is what remains in normal progression
    /// order behind the parked entries.  Only genuinely asynchronous
    /// stores produce these — synchronous runs emit no `exec.park`.
    pub(crate) fn on_park(&self, batch: usize, heap: usize) {
        self.parks.inc();
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(
            &Event::new("exec.park")
                .str("engine", self.engine)
                .u64("batch", batch as u64)
                .u64("heap", heap as u64),
        );
    }

    /// The parked prefetch of `batch` coefficients landed and the executor
    /// resumed; the matching `exec.prefetch` record (with the overlap
    /// latency and the batch verdict) follows immediately.
    pub(crate) fn on_resume(&self, batch: usize) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(
            &Event::new("exec.resume")
                .str("engine", self.engine)
                .u64("batch", batch as u64),
        );
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_defer(
        &self,
        key: &CoeffKey,
        importance: f64,
        error: &StorageError,
        first: bool,
        deferred: usize,
        fault: &FaultStats,
    ) {
        if first {
            self.deferrals.inc();
        }
        self.deferred_depth.set(deferred as i64);
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(
            &Event::new("exec.defer")
                .str("engine", self.engine)
                .str("key", key.to_string())
                .f64("importance", importance)
                .str("error", error.class())
                .bool("first", first)
                .u64("deferred", deferred as u64)
                .u64("attempts", fault.attempts)
                .u64("retries", fault.retries),
        );
    }

    pub(crate) fn on_finish(
        &self,
        status: &str,
        retrieved: usize,
        exact: bool,
        fault: &FaultStats,
    ) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(
            &Event::new("exec.finish")
                .str("engine", self.engine)
                .str("status", status)
                .u64("retrieved", retrieved as u64)
                .bool("exact", exact)
                .u64("attempts", fault.attempts)
                .u64("successes", fault.successes)
                .u64("transient_failures", fault.transient_failures)
                .u64("permanent_failures", fault.permanent_failures)
                .u64("retries", fault.retries)
                .u64("deferrals", fault.deferrals)
                .u64("recoveries", fault.recoveries)
                .u64("backoff_ticks", fault.backoff_ticks),
        );
    }
}

/// Observer for the query-rewrite stage ([`crate::BatchQueries`]): per-query
/// rewrite latency and coefficient counts, plus a batch summary event.
pub struct RewriteObserver {
    sink: Arc<dyn EventSink>,
    registry: Arc<MetricsRegistry>,
    queries: Counter,
    coefficients: Counter,
    query_ns: Histogram,
}

impl RewriteObserver {
    /// An observer emitting to `sink` with a fresh private registry.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        Self::build(sink, Arc::new(MetricsRegistry::new()))
    }

    fn build(sink: Arc<dyn EventSink>, registry: Arc<MetricsRegistry>) -> Self {
        RewriteObserver {
            queries: registry.counter("rewrite.queries"),
            coefficients: registry.counter("rewrite.coefficients"),
            query_ns: registry.histogram("rewrite.query_ns"),
            sink,
            registry,
        }
    }

    /// Uses `registry` (shared with other components) instead of a private
    /// one.
    pub fn with_registry(self, registry: Arc<MetricsRegistry>) -> Self {
        Self::build(self.sink, registry)
    }

    /// The registry this observer records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    pub(crate) fn on_query(&self, qi: usize, coefficients: usize, latency_ns: u64) {
        self.queries.inc();
        self.coefficients.add(coefficients as u64);
        self.query_ns.record(latency_ns);
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(
            &Event::new("rewrite.query")
                .u64("query", qi as u64)
                .u64("coefficients", coefficients as u64)
                .u64("latency_ns", latency_ns),
        );
    }

    pub(crate) fn on_batch(
        &self,
        queries: usize,
        total_coefficients: usize,
        threads: usize,
        latency_ns: u64,
    ) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(
            &Event::new("rewrite.batch")
                .u64("queries", queries as u64)
                .u64("total_coefficients", total_coefficients as u64)
                .u64("threads", threads as u64)
                .u64("latency_ns", latency_ns),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_obs::MemorySink;

    #[test]
    fn observer_builders_compose() {
        let registry = Arc::new(MetricsRegistry::new());
        let obs = ExecObserver::new(Arc::new(MemorySink::new()))
            .with_engine("round_robin")
            .with_bounds(1024, 2.0)
            .with_registry(Arc::clone(&registry));
        assert!(Arc::ptr_eq(obs.registry(), &registry));
        obs.steps.inc();
        assert_eq!(registry.snapshot().counter("round_robin.steps"), Some(1));
        // Bounds survive the builder chain.
        assert_eq!(obs.n_total, Some(1024));
        assert_eq!(obs.k_abs_sum, Some(2.0));
    }

    #[test]
    fn metrics_only_observer_emits_nothing() {
        let obs = ExecObserver::metrics_only();
        assert!(!obs.sink().enabled());
        obs.on_start(4, 100);
        obs.on_finish("exact", 100, true, &FaultStats::default());
        assert_eq!(
            obs.registry().snapshot().counter("progressive.steps"),
            Some(0)
        );
    }

    #[test]
    fn defer_event_carries_error_class() {
        let sink = Arc::new(MemorySink::new());
        let obs = ExecObserver::new(sink.clone());
        let key = CoeffKey::one(3);
        obs.on_defer(
            &key,
            0.5,
            &StorageError::Permanent { key },
            true,
            1,
            &FaultStats::default(),
        );
        let line = sink.lines().pop().unwrap();
        let parsed = batchbb_obs::jsonl::parse_line(&line).unwrap();
        assert_eq!(parsed.name(), "exec.defer");
        assert_eq!(parsed.str("error"), Some("permanent"));
        assert_eq!(parsed.bool("first"), Some(true));
    }

    #[test]
    fn rewrite_observer_counts_queries_and_coefficients() {
        let sink = Arc::new(MemorySink::new());
        let obs = RewriteObserver::new(sink.clone());
        obs.on_query(0, 10, 100);
        obs.on_query(1, 20, 200);
        obs.on_batch(2, 30, 1, 500);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("rewrite.queries"), Some(2));
        assert_eq!(snap.counter("rewrite.coefficients"), Some(30));
        assert_eq!(snap.histogram("rewrite.query_ns").unwrap().count, 2);
        assert_eq!(sink.len(), 3);
    }
}
