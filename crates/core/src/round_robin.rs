//! The round-robin single-query baseline (§2.2).
//!
//! "One simple solution is to use s instances of the single query
//! evaluation technique, and advance them in a round-robin fashion. This
//! turns out to waste a tremendous amount of I/O."  Each query runs its own
//! biggest-B progression (ordered by its own `|q̂ᵢ[ξ]|²`), retrieving its
//! coefficients independently — shared coefficients are fetched once *per
//! query* instead of once per batch.

use std::collections::VecDeque;

use batchbb_storage::{retry::get_with_retry, CoefficientStore, FaultStats, RetryPolicy};
use batchbb_tensor::CoeffKey;

use crate::observe::{ExecObserver, StepObservation};
use crate::{BatchQueries, StepInfo};

/// One query's private progression state.
struct SingleQuery {
    /// Coefficients sorted by decreasing |value| (single-query biggest-B,
    /// i.e. ProPolyne's progression order).
    plan: Vec<(CoeffKey, f64)>,
    cursor: usize,
    estimate: f64,
    /// This query's coefficients whose retrieval exhausted its retries, as
    /// indices into `plan` (per-query queue keeps the baseline fair: a
    /// broken coefficient stalls only the query that needs it).
    deferred: VecDeque<usize>,
}

/// Round-robin evaluation of a batch using independent single-query
/// instances.
pub struct RoundRobin<'a> {
    store: &'a dyn CoefficientStore,
    queries: Vec<SingleQuery>,
    retrievals: u64,
    next: usize,
    fault: FaultStats,
    observer: Option<ExecObserver>,
}

impl<'a> RoundRobin<'a> {
    /// Builds per-query plans from a rewritten batch.
    pub fn new(batch: &BatchQueries, store: &'a dyn CoefficientStore) -> Self {
        let queries = batch
            .coefficients()
            .iter()
            .map(|coeffs| {
                let mut plan: Vec<(CoeffKey, f64)> = coeffs.entries().to_vec();
                plan.sort_by(|a, b| {
                    (b.1 * b.1)
                        .total_cmp(&(a.1 * a.1))
                        .then_with(|| a.0.cmp(&b.0))
                });
                SingleQuery {
                    plan,
                    cursor: 0,
                    estimate: 0.0,
                    deferred: VecDeque::new(),
                }
            })
            .collect();
        RoundRobin {
            store,
            queries,
            retrievals: 0,
            next: 0,
            fault: FaultStats::default(),
            observer: None,
        }
    }

    /// Attaches an observer (relabelled to the `"round_robin"` engine) so
    /// baseline runs emit the same `exec.*` schema as the batch executor.
    /// The baseline does not track importance masses, so the penalty-bound
    /// fields are omitted from its step events.
    pub fn with_observer(mut self, observer: ExecObserver) -> Self {
        let observer = observer.with_engine("round_robin");
        let total: usize = self.queries.iter().map(|q| q.plan.len()).sum();
        observer.on_start(self.queries.len(), total);
        self.observer = Some(observer);
        self
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&ExecObserver> {
        self.observer.as_ref()
    }

    /// Plan entries not yet attempted, across all queries.
    fn pending_count(&self) -> usize {
        self.queries.iter().map(|q| q.plan.len() - q.cursor).sum()
    }

    fn observe_step(
        &self,
        kind: &'static str,
        key: CoeffKey,
        coeff: f64,
        value: f64,
        latency_ns: u64,
    ) {
        if let Some(obs) = &self.observer {
            // Single-query biggest-B importance is |q̂ᵢ[ξ]|²; batch-wide
            // masses are untracked (NaN ⇒ bound fields omitted).
            let info = StepInfo {
                key,
                importance: coeff * coeff,
                value,
                queries_advanced: 1,
            };
            obs.on_step(&StepObservation {
                kind,
                info: &info,
                pending: self.pending_count(),
                deferred: self.deferred_count(),
                remaining_importance: f64::NAN,
                deferred_importance: f64::NAN,
                max_unresolved: None,
                homogeneity: 2.0,
                retrieved: self.retrievals as usize,
                fault: self.fault,
                latency_ns,
            });
        }
    }

    /// Advances one query by one retrieval, cycling through the batch.
    /// Returns `false` when every query is exact.
    pub fn step(&mut self) -> bool {
        let s = self.queries.len();
        if s == 0 {
            return false;
        }
        for probe in 0..s {
            let qi = (self.next + probe) % s;
            let q = &mut self.queries[qi];
            if q.cursor < q.plan.len() {
                let (key, coeff) = q.plan[q.cursor];
                q.cursor += 1;
                let timer = ExecObserver::maybe_timer(&self.observer);
                let value = self.store.get(&key).unwrap_or(0.0);
                let latency_ns = timer.map_or(0, |t| t.elapsed_ns());
                self.queries[qi].estimate += coeff * value;
                self.retrievals += 1;
                self.next = (qi + 1) % s;
                self.observe_step("retrieved", key, coeff, value, latency_ns);
                return true;
            }
        }
        false
    }

    /// Runs to exact completion, returning total retrievals.
    pub fn run_to_end(&mut self) -> u64 {
        while self.step() {}
        if let Some(obs) = &self.observer {
            obs.on_finish("exact", self.retrievals as usize, true, &self.fault);
        }
        self.retrievals
    }

    /// Fallible variant of [`RoundRobin::step`]: retries transient failures
    /// under `policy` and defers coefficients that keep failing onto the
    /// owning query's queue, so the baseline degrades the same way the
    /// batch executor does and comparisons under faults stay fair.
    ///
    /// Returns `true` while any query still has pending work (fresh plan
    /// entries or deferred retrievals).
    pub fn try_step(&mut self, policy: &RetryPolicy) -> bool {
        let s = self.queries.len();
        if s == 0 {
            return false;
        }
        for probe in 0..s {
            let qi = (self.next + probe) % s;
            let q = &mut self.queries[qi];
            // Fresh plan entries first; fall back to this query's deferral
            // queue once its cursor is exhausted.
            let (plan_ix, from_deferred) = if q.cursor < q.plan.len() {
                let ix = q.cursor;
                q.cursor += 1;
                (ix, false)
            } else if let Some(ix) = q.deferred.pop_front() {
                (ix, true)
            } else {
                continue;
            };
            let (key, coeff) = q.plan[plan_ix];
            let timer = ExecObserver::maybe_timer(&self.observer);
            let outcome = get_with_retry(self.store, &key, policy, policy.max_attempts);
            let latency_ns = timer.map_or(0, |t| t.elapsed_ns());
            outcome.record(&mut self.fault);
            match outcome.result {
                Ok(value) => {
                    if from_deferred {
                        self.fault.recoveries += 1;
                    }
                    let value = value.unwrap_or(0.0);
                    self.queries[qi].estimate += coeff * value;
                    self.retrievals += 1;
                    self.next = (qi + 1) % s;
                    let kind = if from_deferred {
                        "recovered"
                    } else {
                        "retrieved"
                    };
                    self.observe_step(kind, key, coeff, value, latency_ns);
                }
                Err(error) => {
                    if !from_deferred {
                        self.fault.deferrals += 1;
                    }
                    self.queries[qi].deferred.push_back(plan_ix);
                    self.next = (qi + 1) % s;
                    if let Some(obs) = &self.observer {
                        obs.on_defer(
                            &key,
                            coeff * coeff,
                            &error,
                            !from_deferred,
                            self.deferred_count(),
                            &self.fault,
                        );
                    }
                }
            }
            return true;
        }
        false
    }

    /// Drives [`RoundRobin::try_step`] until every query is exact or the
    /// deferral queues stop making progress (a full cycle over the batch
    /// recovers nothing). Returns `true` when all queries finished exact.
    pub fn run_with_faults(&mut self, policy: &RetryPolicy) -> bool {
        let exact = self.fault_loop(policy);
        if let Some(obs) = &self.observer {
            let status = if exact { "exact" } else { "degraded" };
            obs.on_finish(status, self.retrievals as usize, exact, &self.fault);
        }
        exact
    }

    fn fault_loop(&mut self, policy: &RetryPolicy) -> bool {
        loop {
            if self.queries.iter().all(|q| q.cursor >= q.plan.len()) {
                let pending: usize = self.queries.iter().map(|q| q.deferred.len()).sum();
                if pending == 0 {
                    return true;
                }
                // Only deferred work remains: give every pending retrieval
                // one more round, and stop if none of them recovered.
                let before = self.fault.recoveries;
                for _ in 0..pending {
                    self.try_step(policy);
                }
                if self.fault.recoveries == before {
                    return false;
                }
            } else if !self.try_step(policy) {
                return self.deferred_count() == 0;
            }
        }
    }

    /// Coefficients currently parked on deferral queues, across all queries.
    pub fn deferred_count(&self) -> usize {
        self.queries.iter().map(|q| q.deferred.len()).sum()
    }

    /// Accumulated fault/retry counters for the fallible path.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault
    }

    /// Current progressive estimates.
    pub fn estimates(&self) -> Vec<f64> {
        self.queries.iter().map(|q| q.estimate).collect()
    }

    /// Retrievals so far.
    pub fn retrievals(&self) -> u64 {
        self.retrievals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgressiveExecutor;
    use batchbb_penalty::Sse;
    use batchbb_query::{HyperRect, LinearStrategy, RangeSum, WaveletStrategy};
    use batchbb_storage::MemoryStore;
    use batchbb_tensor::{Shape, Tensor};
    use batchbb_wavelet::Wavelet;

    fn fixture() -> (Tensor, MemoryStore, Shape, WaveletStrategy) {
        let shape = Shape::new(vec![16, 16]).unwrap();
        let data = Tensor::from_fn(shape.clone(), |ix| ((ix[0] + 2 * ix[1]) % 4) as f64);
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        (data, store, shape, strategy)
    }

    fn queries() -> Vec<RangeSum> {
        vec![
            RangeSum::count(HyperRect::new(vec![0, 0], vec![7, 15])),
            RangeSum::count(HyperRect::new(vec![8, 0], vec![15, 15])),
            RangeSum::count(HyperRect::new(vec![4, 4], vec![11, 11])),
        ]
    }

    #[test]
    fn exact_at_completion() {
        let (data, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut rr = RoundRobin::new(&batch, &store);
        rr.run_to_end();
        for (q, est) in batch.queries().iter().zip(rr.estimates()) {
            let truth = q.eval_direct(&data);
            assert!((est - truth).abs() < 1e-6, "{est} vs {truth}");
        }
    }

    #[test]
    fn wastes_io_relative_to_batch() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut rr = RoundRobin::new(&batch, &store);
        let rr_cost = rr.run_to_end();
        assert_eq!(rr_cost as usize, batch.total_coefficients());

        store.reset_stats();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let batch_cost = exec.run_to_end();
        assert!(
            (batch_cost as u64) < rr_cost,
            "batch {batch_cost} should beat round-robin {rr_cost}"
        );
    }

    #[test]
    fn cycles_between_queries() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut rr = RoundRobin::new(&batch, &store);
        for _ in 0..3 {
            assert!(rr.step());
        }
        // After s steps every query should have advanced exactly once.
        for q in &rr.queries {
            assert_eq!(q.cursor, 1);
        }
    }

    #[test]
    fn empty_batch_terminates() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, vec![], &shape).unwrap();
        let mut rr = RoundRobin::new(&batch, &store);
        assert_eq!(rr.run_to_end(), 0);
    }

    #[test]
    fn fallible_on_healthy_store_matches_infallible() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut plain = RoundRobin::new(&batch, &store);
        plain.run_to_end();
        let mut fallible = RoundRobin::new(&batch, &store);
        assert!(fallible.run_with_faults(&RetryPolicy::default()));
        assert_eq!(fallible.estimates(), plain.estimates());
        assert_eq!(fallible.retrievals(), plain.retrievals());
        let fs = fallible.fault_stats();
        assert_eq!(fs.attempts, fs.successes);
        assert!(fs.attempts_reconcile() && fs.deferrals_reconcile(0));
    }

    #[test]
    fn transient_faults_still_converge_exactly() {
        use batchbb_storage::{FaultInjectingStore, FaultPlan};
        let (data, store, shape, strategy) = fixture();
        let flaky =
            FaultInjectingStore::new(store, FaultPlan::new(0xcafe).with_transient_rate(0.3));
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut rr = RoundRobin::new(&batch, &flaky);
        assert!(rr.run_with_faults(&RetryPolicy::default()));
        for (q, est) in batch.queries().iter().zip(rr.estimates()) {
            let truth = q.eval_direct(&data);
            assert!((est - truth).abs() < 1e-6, "{est} vs {truth}");
        }
        let fs = rr.fault_stats();
        assert!(fs.transient_failures > 0, "30% rate should hit something");
        assert!(fs.attempts_reconcile());
        assert!(fs.deferrals_reconcile(rr.deferred_count() as u64));
    }

    #[test]
    fn permanent_fault_stalls_only_its_query() {
        use batchbb_storage::{FaultInjectingStore, FaultPlan};
        let (data, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        // Break the most important coefficient of query 0's plan.
        let broken = {
            let rr = RoundRobin::new(&batch, &store);
            rr.queries[0].plan[0].0
        };
        let flaky =
            FaultInjectingStore::new(store, FaultPlan::new(7).with_permanent_keys([broken]));
        let mut rr = RoundRobin::new(&batch, &flaky);
        assert!(!rr.run_with_faults(&RetryPolicy::default()));
        assert!(rr.deferred_count() >= 1);
        let fs = rr.fault_stats();
        assert!(fs.permanent_failures > 0);
        assert!(fs.deferrals_reconcile(rr.deferred_count() as u64));
        // Queries that never touch the broken key are already exact.
        for (qi, (q, est)) in batch.queries().iter().zip(rr.estimates()).enumerate() {
            let touches = rr.queries[qi].plan.iter().any(|&(k, _)| k == broken);
            if !touches {
                let truth = q.eval_direct(&data);
                assert!((est - truth).abs() < 1e-6, "query {qi}: {est} vs {truth}");
            }
        }
        // Healing the store lets the deferred retrieval drain to exactness.
        flaky.heal();
        assert!(rr.run_with_faults(&RetryPolicy::default()));
        for (q, est) in batch.queries().iter().zip(rr.estimates()) {
            let truth = q.eval_direct(&data);
            assert!((est - truth).abs() < 1e-6, "{est} vs {truth}");
        }
        assert!(rr.fault_stats().recoveries >= 1);
    }
}
