//! The round-robin single-query baseline (§2.2).
//!
//! "One simple solution is to use s instances of the single query
//! evaluation technique, and advance them in a round-robin fashion. This
//! turns out to waste a tremendous amount of I/O."  Each query runs its own
//! biggest-B progression (ordered by its own `|q̂ᵢ[ξ]|²`), retrieving its
//! coefficients independently — shared coefficients are fetched once *per
//! query* instead of once per batch.

use batchbb_storage::CoefficientStore;
use batchbb_tensor::CoeffKey;

use crate::BatchQueries;

/// One query's private progression state.
struct SingleQuery {
    /// Coefficients sorted by decreasing |value| (single-query biggest-B,
    /// i.e. ProPolyne's progression order).
    plan: Vec<(CoeffKey, f64)>,
    cursor: usize,
    estimate: f64,
}

/// Round-robin evaluation of a batch using independent single-query
/// instances.
pub struct RoundRobin<'a> {
    store: &'a dyn CoefficientStore,
    queries: Vec<SingleQuery>,
    retrievals: u64,
    next: usize,
}

impl<'a> RoundRobin<'a> {
    /// Builds per-query plans from a rewritten batch.
    pub fn new(batch: &BatchQueries, store: &'a dyn CoefficientStore) -> Self {
        let queries = batch
            .coefficients()
            .iter()
            .map(|coeffs| {
                let mut plan: Vec<(CoeffKey, f64)> = coeffs.entries().to_vec();
                plan.sort_by(|a, b| {
                    (b.1 * b.1)
                        .total_cmp(&(a.1 * a.1))
                        .then_with(|| a.0.cmp(&b.0))
                });
                SingleQuery {
                    plan,
                    cursor: 0,
                    estimate: 0.0,
                }
            })
            .collect();
        RoundRobin {
            store,
            queries,
            retrievals: 0,
            next: 0,
        }
    }

    /// Advances one query by one retrieval, cycling through the batch.
    /// Returns `false` when every query is exact.
    pub fn step(&mut self) -> bool {
        let s = self.queries.len();
        if s == 0 {
            return false;
        }
        for probe in 0..s {
            let qi = (self.next + probe) % s;
            let q = &mut self.queries[qi];
            if q.cursor < q.plan.len() {
                let (key, coeff) = q.plan[q.cursor];
                q.cursor += 1;
                let value = self.store.get(&key).unwrap_or(0.0);
                q.estimate += coeff * value;
                self.retrievals += 1;
                self.next = (qi + 1) % s;
                return true;
            }
        }
        false
    }

    /// Runs to exact completion, returning total retrievals.
    pub fn run_to_end(&mut self) -> u64 {
        while self.step() {}
        self.retrievals
    }

    /// Current progressive estimates.
    pub fn estimates(&self) -> Vec<f64> {
        self.queries.iter().map(|q| q.estimate).collect()
    }

    /// Retrievals so far.
    pub fn retrievals(&self) -> u64 {
        self.retrievals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgressiveExecutor;
    use batchbb_penalty::Sse;
    use batchbb_query::{HyperRect, LinearStrategy, RangeSum, WaveletStrategy};
    use batchbb_storage::MemoryStore;
    use batchbb_tensor::{Shape, Tensor};
    use batchbb_wavelet::Wavelet;

    fn fixture() -> (Tensor, MemoryStore, Shape, WaveletStrategy) {
        let shape = Shape::new(vec![16, 16]).unwrap();
        let data = Tensor::from_fn(shape.clone(), |ix| ((ix[0] + 2 * ix[1]) % 4) as f64);
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        (data, store, shape, strategy)
    }

    fn queries() -> Vec<RangeSum> {
        vec![
            RangeSum::count(HyperRect::new(vec![0, 0], vec![7, 15])),
            RangeSum::count(HyperRect::new(vec![8, 0], vec![15, 15])),
            RangeSum::count(HyperRect::new(vec![4, 4], vec![11, 11])),
        ]
    }

    #[test]
    fn exact_at_completion() {
        let (data, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut rr = RoundRobin::new(&batch, &store);
        rr.run_to_end();
        for (q, est) in batch.queries().iter().zip(rr.estimates()) {
            let truth = q.eval_direct(&data);
            assert!((est - truth).abs() < 1e-6, "{est} vs {truth}");
        }
    }

    #[test]
    fn wastes_io_relative_to_batch() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut rr = RoundRobin::new(&batch, &store);
        let rr_cost = rr.run_to_end();
        assert_eq!(rr_cost as usize, batch.total_coefficients());

        store.reset_stats();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let batch_cost = exec.run_to_end();
        assert!(
            (batch_cost as u64) < rr_cost,
            "batch {batch_cost} should beat round-robin {rr_cost}"
        );
    }

    #[test]
    fn cycles_between_queries() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut rr = RoundRobin::new(&batch, &store);
        for _ in 0..3 {
            assert!(rr.step());
        }
        // After s steps every query should have advanced exactly once.
        for q in &rr.queries {
            assert_eq!(q.cursor, 1);
        }
    }

    #[test]
    fn empty_batch_terminates() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, vec![], &shape).unwrap();
        let mut rr = RoundRobin::new(&batch, &store);
        assert_eq!(rr.run_to_end(), 0);
    }
}
