//! The progressive executor (steps 4–5 of Batch-Biggest-B).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::collections::VecDeque;

use batchbb_penalty::Penalty;
use batchbb_storage::{
    retry::get_with_retry, CoefficientStore, Completion, FaultStats, RetryPolicy, StorageError,
};
use batchbb_tensor::CoeffKey;

use crate::observe::{ExecObserver, StepObservation};
use crate::{BatchQueries, MasterList};

/// Mirrors the storage layer's near-zero eviction tolerance
/// (`MemoryStore::add` / `VersionedStore::publish` drop slots whose
/// post-delta magnitude is at most this, so subsequent reads return
/// exactly `0.0`).  The update-repair paths snap to the same value so a
/// repaired executor stays bit-identical to one restarted on the
/// updated store.
const STORE_ZERO_TOL: f64 = 1e-13;

/// A heap entry ordered by importance (ties broken by key for
/// reproducibility).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    importance: f64,
    key: CoeffKey,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on importance; ties resolved toward the smaller key so
        // every component (executor, bounded variant, optimality ranking)
        // agrees on one deterministic progression order.
        self.importance
            .total_cmp(&other.importance)
            .then_with(|| other.key.cmp(&self.key))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A batched prefetch submitted to the store but not yet resolved.
///
/// The popped heap entries ride along (in importance order — they came off
/// the top of the heap) so resolution can refill the prefetch buffer, or
/// push them back on a batch failure, exactly like the synchronous path.
struct PendingFetch {
    entries: Vec<HeapEntry>,
    completion: Completion,
    /// Armed when an observer is attached: measures submit→resolve latency
    /// for the `exec.prefetch` record, mirroring the blocking fetch timer.
    timer: Option<batchbb_obs::SpanTimer>,
}

/// What one [`ProgressiveExecutor::step`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepInfo {
    /// The coefficient key retrieved.
    pub key: CoeffKey,
    /// Its importance `ι_p(ξ)` under the executor's penalty.
    pub importance: f64,
    /// The retrieved data coefficient (0 when absent from the store).
    pub value: f64,
    /// How many queries this retrieval advanced.
    pub queries_advanced: usize,
}

/// What one [`ProgressiveExecutor::try_step`] did on the fallible path.
#[derive(Debug, Clone, PartialEq)]
pub enum TryStepOutcome {
    /// The most important heap coefficient was retrieved successfully.
    Retrieved(StepInfo),
    /// A previously deferred coefficient finally resolved; its contribution
    /// is now folded into the estimates.
    Recovered(StepInfo),
    /// The step's retry budget ran out; the coefficient is parked in the
    /// deferral queue (re-attempted by later `try_step` calls once the heap
    /// drains). The estimates remain valid — just with a wider penalty
    /// bound, reported by [`ProgressiveExecutor::degradation_report`].
    Deferred {
        /// The coefficient whose retrieval keeps failing.
        key: CoeffKey,
        /// Its importance `ι_p(ξ)`, now counted toward the deferred mass.
        importance: f64,
        /// The last failure observed.
        error: StorageError,
    },
    /// The policy's `total_attempt_budget` is spent; nothing was attempted.
    BudgetExhausted,
    /// A batched prefetch submitted to an asynchronous store is still in
    /// flight: no coefficient was applied and no attempt was charged.  The
    /// caller may do other work (a serve worker parks this batch and picks
    /// up another) and re-invoke `try_step` later; the step resolves the
    /// fetch as soon as it lands.  Never returned over a synchronous store
    /// — the default [`CoefficientStore::submit`] adapter resolves at
    /// submit time, keeping the blocking path bit-identical.
    Pending,
    /// Heap and deferral queue are both empty — the estimates are exact.
    Exhausted,
}

/// How a [`ProgressiveExecutor::drain_with_faults`] loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainStatus {
    /// Everything retrieved; estimates are exact.
    Exact,
    /// A full pass over the deferral queue recovered nothing (persistent
    /// faults); estimates are the best achievable until the store heals.
    Degraded,
    /// The policy's total attempt budget ran out first.
    BudgetExhausted,
    /// The certified worst-case bound dropped to the caller's target
    /// before the heap drained (only from
    /// [`ProgressiveExecutor::drain_with_faults_budgeted_to_bound`]): the
    /// estimates are inexact but provably within the target penalty.
    BoundReached,
}

/// Degraded-result contract under partial coefficient availability:
/// everything a caller needs to decide whether the current estimates are
/// good enough, returned by [`ProgressiveExecutor::degradation_report`].
///
/// The penalty accounting extends Theorems 1 and 2 to the fault-tolerant
/// setting by treating deferred coefficients exactly like unretrieved
/// ones: a deferred `ξ` contributes its `ι_p(ξ)` to the expected-penalty
/// numerator and participates in the worst-case maximum, so both bounds
/// are *monotonically non-increasing* as deferrals drain (each recovery
/// moves a coefficient's mass out of the bound, never into it).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// The current progressive estimates (valid, possibly inexact).
    pub estimates: Vec<f64>,
    /// Coefficients awaiting recovery, as `(key, importance)` in queue
    /// order.
    pub deferred: Vec<(CoeffKey, f64)>,
    /// Σ ι_p over the deferred coefficients.
    pub deferred_importance: f64,
    /// Theorem 2's expected penalty over unretrieved ∪ deferred mass:
    /// `(remaining + deferred) / (n_total − 1)`.
    pub expected_penalty: f64,
    /// Theorem 1's worst-case bound `K^α · max ι_p` over unretrieved ∪
    /// deferred coefficients; zero once exact.
    pub worst_case_bound: f64,
    /// Fault-path counters accumulated by this executor's `try_step`s.
    pub fault: FaultStats,
    /// True when nothing is pending or deferred (estimates are exact).
    pub is_exact: bool,
}

/// Progressive evaluation state for one batch under one penalty function.
///
/// The penalty is supplied *at query time* — the same preprocessed store
/// serves any penalty, which is the flexibility argument of §5 ("an online
/// approximation of the query batch leads to a much more flexible scheme").
pub struct ProgressiveExecutor<'a> {
    store: &'a dyn CoefficientStore,
    columns: HashMap<CoeffKey, Vec<(u32, f64)>>,
    heap: BinaryHeap<HeapEntry>,
    estimates: Vec<f64>,
    homogeneity: f64,
    retrieved: usize,
    /// Keys already pulled from the store, with the value observed — needed
    /// to repair estimates when the view is updated mid-progression.
    seen: HashMap<CoeffKey, f64>,
    /// Σ ι_p over the coefficients still in the heap — Theorem 2's
    /// expected-penalty numerator, maintained incrementally.
    remaining_importance: f64,
    /// Prefetch window W: how many heap entries one fallible step may
    /// fetch through a single [`CoefficientStore::try_get_many`] call.
    /// 1 (the default) takes exactly the singleton retrieval path.
    prefetch_window: usize,
    /// Values fetched by a batched prefetch but not yet applied, in
    /// importance order (front = most important).  These count as
    /// *pending*: their importance is still in `remaining_importance`,
    /// they participate in [`ProgressiveExecutor::remaining`] /
    /// [`ProgressiveExecutor::next_importance`], and each is folded into
    /// the estimates by its own step — so per-step bounds and traces are
    /// identical to the unbatched progression.
    prefetched: VecDeque<(HeapEntry, f64)>,
    /// After a whole-batch prefetch failure, how many singleton steps to
    /// run before re-attempting a batched fetch.  The singleton fallback
    /// is what attributes the failure: only the keys that individually
    /// fail get deferred, the rest retrieve normally.
    singleton_debt: usize,
    /// A batched prefetch submitted to an asynchronous store and not yet
    /// resolved.  Its entries still count as *pending* (importance stays in
    /// `remaining_importance`); at most one of `prefetched`/`pending_fetch`
    /// is ever populated — a resolved fetch empties into `prefetched`.
    /// Always `None` over a synchronous store.
    pending_fetch: Option<PendingFetch>,
    /// Coefficients whose retrieval exhausted its retry budget, awaiting
    /// re-attempts (FIFO so every deferred key gets its turn).
    deferred: VecDeque<HeapEntry>,
    /// Σ ι_p over the deferral queue, tracked separately from
    /// `remaining_importance` so degraded penalty bounds stay exact.
    deferred_importance: f64,
    /// Fault-path counters (all zero when only the infallible path runs).
    fault: FaultStats,
    /// Optional instrumentation: metrics and trace events per step. `None`
    /// keeps the hot path free of even a clock read.
    observer: Option<ExecObserver>,
}

/// Compile-time `Send` audit: executors migrate between `batchbb-serve`
/// pool workers, so every field (store borrow, observer, bookkeeping) must
/// stay `Send`. `CoefficientStore` and `EventSink` both require
/// `Send + Sync`, which this function proves transitively.
#[allow(dead_code)]
fn assert_executor_is_send(exec: ProgressiveExecutor<'_>) -> impl Send + '_ {
    exec
}

impl<'a> ProgressiveExecutor<'a> {
    /// Builds the executor: merges the batch into a master list, scores
    /// every coefficient with `ι_p`, and heapifies.
    pub fn new(
        batch: &BatchQueries,
        penalty: &dyn Penalty,
        store: &'a dyn CoefficientStore,
    ) -> Self {
        let master = MasterList::build(batch);
        ProgressiveExecutor::from_master(batch.len(), master, penalty, store)
    }

    /// Builds from a pre-merged master list (lets callers reuse the merge
    /// across penalties).
    pub fn from_master(
        batch_size: usize,
        master: MasterList,
        penalty: &dyn Penalty,
        store: &'a dyn CoefficientStore,
    ) -> Self {
        let columns = master.into_columns();
        let mut heap = BinaryHeap::with_capacity(columns.len());
        let mut remaining_importance = 0.0;
        for (key, column) in &columns {
            let column_usize: Vec<(usize, f64)> =
                column.iter().map(|&(i, v)| (i as usize, v)).collect();
            let importance = penalty.importance(&column_usize, batch_size);
            // A pathological penalty can emit NaN, which would float to the
            // top of the max-heap (total_cmp orders NaN above +inf) and
            // poison every importance sum from here on. Treat it as "no
            // importance" instead.
            let importance = if importance.is_nan() { 0.0 } else { importance };
            remaining_importance += importance;
            heap.push(HeapEntry {
                importance,
                key: *key,
            });
        }
        ProgressiveExecutor {
            store,
            columns,
            heap,
            estimates: vec![0.0; batch_size],
            homogeneity: penalty.homogeneity(),
            retrieved: 0,
            seen: HashMap::new(),
            remaining_importance,
            prefetch_window: 1,
            prefetched: VecDeque::new(),
            singleton_debt: 0,
            pending_fetch: None,
            deferred: VecDeque::new(),
            deferred_importance: 0.0,
            fault: FaultStats::default(),
            observer: None,
        }
    }

    /// Attaches an observer: every subsequent step records metrics and
    /// (when the observer's sink is enabled) emits trace events. Emits the
    /// `exec.start` event immediately.
    ///
    /// Observation never alters evaluation — estimates, progression order,
    /// and fault handling are bit-for-bit identical with or without it.
    pub fn with_observer(mut self, observer: ExecObserver) -> Self {
        observer.on_start(self.estimates.len(), self.columns.len());
        self.observer = Some(observer);
        self
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&ExecObserver> {
        self.observer.as_ref()
    }

    /// Sets the prefetch window `w >= 1`: each fallible step may pop up to
    /// `w` top-importance heap entries and fetch them through one
    /// [`CoefficientStore::try_get_many`] call, then apply them one per
    /// step in importance order.
    ///
    /// Step semantics are unchanged for every `w`: each `try_step` still
    /// folds in exactly one coefficient, per-step penalty bounds are
    /// computed over the same pending set, and (thanks to canonical
    /// finalization) the final estimates are bit-identical across windows.
    /// `w = 1` takes exactly the unbatched code path.  On a whole-batch
    /// fetch failure the popped entries return to the heap and the next
    /// `w` steps retrieve singleton-style, deferring only the keys that
    /// individually fail.
    pub fn with_prefetch_window(mut self, w: usize) -> Self {
        assert!(w >= 1, "prefetch window must be at least 1");
        self.prefetch_window = w;
        self
    }

    /// The configured prefetch window.
    pub fn prefetch_window(&self) -> usize {
        self.prefetch_window
    }

    /// Extracts the most important unretrieved coefficient, fetches its
    /// data value, and advances every query that needs it (Equation 2).
    /// Returns `None` once the heap is empty — at which point
    /// [`ProgressiveExecutor::estimates`] holds the exact results.
    pub fn step(&mut self) -> Option<StepInfo> {
        // A parked asynchronous prefetch owns the next entries in
        // progression order; the infallible path simply blocks on it.
        self.resolve_pending_blocking();
        // A value already prefetched by the fallible path is next in the
        // progression order; fold it in without touching the store again.
        if let Some((entry, value)) = self.prefetched.pop_front() {
            let info = self.apply_value(&entry, value);
            self.debit_remaining(entry.importance);
            if self.is_exact() {
                self.canonicalize_estimates();
            }
            self.observe_step("retrieved", &info, 0);
            return Some(info);
        }
        let entry = self.heap.pop()?;
        let timer = ExecObserver::maybe_timer(&self.observer);
        let wait = ExecObserver::store_wait_scope(&self.observer);
        let value = self.store.get(&entry.key).unwrap_or(0.0);
        drop(wait);
        let latency_ns = timer.map_or(0, |t| t.elapsed_ns());
        let info = self.apply_value(&entry, value);
        self.debit_remaining(entry.importance);
        if self.is_exact() {
            self.canonicalize_estimates();
        }
        self.observe_step("retrieved", &info, latency_ns);
        Some(info)
    }

    /// Applies one prefetched value as a full fallible step.  The store
    /// attempt happened (and succeeded) at prefetch time; it is *recorded*
    /// here, one per applied coefficient, so the per-step [`FaultStats`]
    /// progression — and the `total_attempt_budget` it is reconciled
    /// against — is identical to the unbatched path.
    fn apply_prefetched(&mut self, entry: HeapEntry, value: f64) -> TryStepOutcome {
        self.fault.attempts += 1;
        self.fault.successes += 1;
        let info = self.apply_value(&entry, value);
        self.debit_remaining(entry.importance);
        if self.is_exact() {
            self.canonicalize_estimates();
        }
        self.observe_step("retrieved", &info, 0);
        TryStepOutcome::Retrieved(info)
    }

    /// Resolves a ready (or waited-on) batched prefetch: a successful batch
    /// fills the prefetch buffer in importance order; a failed one restores
    /// its entries to the heap and arms the singleton-fallback debt, so
    /// only the keys that individually fail get deferred — the exact
    /// semantics of the synchronous `try_get_many` branch.
    fn finish_pending(&mut self, pending: PendingFetch) {
        let PendingFetch {
            entries,
            completion,
            timer,
        } = pending;
        let w = entries.len();
        let wait = ExecObserver::store_wait_scope(&self.observer);
        let fetched = completion.wait();
        drop(wait);
        let latency_ns = timer.map_or(0, |t| t.elapsed_ns());
        match fetched {
            Ok(values) => {
                if let Some(obs) = &self.observer {
                    obs.on_prefetch(w, true, latency_ns);
                }
                self.prefetched.extend(
                    entries
                        .into_iter()
                        .zip(values.into_iter().map(|v| v.unwrap_or(0.0))),
                );
            }
            Err(_) => {
                if let Some(obs) = &self.observer {
                    obs.on_prefetch(w, false, latency_ns);
                }
                // Whole-batch failure carries no per-key verdicts: restore
                // the heap (order is recovered by the heap itself) and let
                // the next `w` steps retrieve singleton-style.
                for entry in entries {
                    self.heap.push(entry);
                }
                self.singleton_debt = w;
            }
        }
    }

    /// Blocks until a parked asynchronous prefetch resolves and folds it
    /// in (no-op when nothing is parked).  Used by the callers that cannot
    /// usefully yield: the infallible [`ProgressiveExecutor::step`] and the
    /// unbounded [`ProgressiveExecutor::drain_with_faults`].
    fn resolve_pending_blocking(&mut self) {
        if let Some(pending) = self.pending_fetch.take() {
            if let Some(obs) = &self.observer {
                obs.on_resume(pending.entries.len());
            }
            self.finish_pending(pending);
        }
    }

    /// Folds a retrieved value into the estimates and bookkeeping shared by
    /// the infallible and fallible paths.
    fn apply_value(&mut self, entry: &HeapEntry, value: f64) -> StepInfo {
        let column = self
            .columns
            .get(&entry.key)
            .expect("heap keys come from the master list");
        if value != 0.0 {
            for &(qi, c) in column {
                self.estimates[qi as usize] += c * value;
            }
        }
        self.seen.insert(entry.key, value);
        self.retrieved += 1;
        StepInfo {
            key: entry.key,
            importance: entry.importance,
            value,
            queries_advanced: column.len(),
        }
    }

    /// Recomputes the estimates from `seen` in sorted key order.
    ///
    /// f64 addition is not associative, so the last bits of an estimate
    /// depend on the order contributions were folded in — and the fallible
    /// path applies deferred coefficients *later* than a fault-free run
    /// would. Re-summing in a canonical order once evaluation is exact
    /// makes the final estimates a pure function of the retrieved values:
    /// a drained fault-injected run matches a fault-free run bit for bit.
    fn canonicalize_estimates(&mut self) {
        let mut keys: Vec<CoeffKey> = self.seen.keys().copied().collect();
        keys.sort_unstable();
        for e in &mut self.estimates {
            *e = 0.0;
        }
        for key in keys {
            let value = self.seen[&key];
            if value == 0.0 {
                continue;
            }
            let column = self
                .columns
                .get(&key)
                .expect("seen keys come from the master list");
            for &(qi, c) in column {
                self.estimates[qi as usize] += c * value;
            }
        }
    }

    fn debit_remaining(&mut self, importance: f64) {
        let none_pending =
            self.heap.is_empty() && self.prefetched.is_empty() && self.pending_fetch.is_none();
        self.remaining_importance = if none_pending {
            0.0 // avoid leaving rounding residue after the final step
        } else {
            (self.remaining_importance - importance).max(0.0)
        };
    }

    fn debit_deferred(&mut self, importance: f64) {
        self.deferred_importance = if self.deferred.is_empty() {
            0.0
        } else {
            (self.deferred_importance - importance).max(0.0)
        };
    }

    /// `max ι_p` over pending ∪ deferred coefficients — Theorem 1's
    /// `ι_p(ξ′)` extended to the fault-tolerant setting; `None` once exact.
    fn max_unresolved_importance(&self) -> Option<f64> {
        self.next_importance()
            .into_iter()
            .chain(self.deferred.iter().map(|e| e.importance))
            .fold(None::<f64>, |acc, i| Some(acc.map_or(i, |a| a.max(i))))
    }

    fn observe_step(&self, kind: &'static str, info: &StepInfo, latency_ns: u64) {
        if let Some(obs) = &self.observer {
            obs.on_step(&StepObservation {
                kind,
                info,
                pending: self.heap.len() + self.prefetched.len() + self.pending_len(),
                deferred: self.deferred.len(),
                remaining_importance: self.remaining_importance,
                deferred_importance: self.deferred_importance,
                max_unresolved: self.max_unresolved_importance(),
                homogeneity: self.homogeneity,
                retrieved: self.retrieved,
                fault: self.fault,
                latency_ns,
            });
        }
    }

    fn observe_defer(&self, key: &CoeffKey, importance: f64, error: &StorageError, first: bool) {
        if let Some(obs) = &self.observer {
            obs.on_defer(
                key,
                importance,
                error,
                first,
                self.deferred.len(),
                &self.fault,
            );
        }
    }

    /// Fallible progressive step: like [`ProgressiveExecutor::step`], but
    /// retrieves through [`CoefficientStore::try_get`] with retries under
    /// `policy`, and *defers* instead of failing when a retrieval cannot be
    /// completed.
    ///
    /// Source order: the importance heap is drained first (the paper's
    /// progression order is preserved for everything retrievable); once the
    /// heap is empty, deferred coefficients are re-attempted round-robin.
    /// A deferred coefficient's importance moves from
    /// `remaining_importance` into the separately tracked deferred mass, so
    /// [`ProgressiveExecutor::degradation_report`] can bound the penalty of
    /// the current estimates under partial availability.
    pub fn try_step(&mut self, policy: &RetryPolicy) -> TryStepOutcome {
        let budget_left = match policy.total_attempt_budget {
            Some(budget) => {
                let left = budget.saturating_sub(self.fault.attempts);
                if left == 0 {
                    return TryStepOutcome::BudgetExhausted;
                }
                Some(left)
            }
            None => None,
        };
        let attempts_allowed = match budget_left {
            Some(left) => left.min(u64::from(policy.max_attempts.max(1))) as u32,
            None => policy.max_attempts,
        };
        // A parked asynchronous prefetch owns the next entries in
        // progression order: resolve it if it landed, park otherwise.
        if let Some(pending) = &self.pending_fetch {
            if !pending.completion.is_ready() {
                return TryStepOutcome::Pending;
            }
            let pending = self.pending_fetch.take().expect("readiness just checked");
            if let Some(obs) = &self.observer {
                obs.on_resume(pending.entries.len());
            }
            self.finish_pending(pending);
            // Fall through: a successful fetch filled the prefetch buffer;
            // a failed one restored the heap and set the singleton debt —
            // either way the paths below behave exactly as after a
            // synchronous fetch.
        }
        // A previously prefetched value is next in progression order.
        if let Some((entry, value)) = self.prefetched.pop_front() {
            return self.apply_prefetched(entry, value);
        }
        // Batched prefetch of the top-W heap entries, worthwhile only when
        // the clamped window exceeds one key (and no recent batch failure
        // is still being attributed by singleton steps).
        if self.prefetch_window > 1 && self.singleton_debt == 0 {
            let w = self
                .prefetch_window
                .min(self.heap.len())
                .min(budget_left.map_or(usize::MAX, |left| left.min(usize::MAX as u64) as usize));
            if w > 1 {
                let mut entries = Vec::with_capacity(w);
                for _ in 0..w {
                    entries.push(self.heap.pop().expect("window clamped to heap length"));
                }
                let keys: Vec<CoeffKey> = entries.iter().map(|e| e.key).collect();
                let timer = ExecObserver::maybe_timer(&self.observer);
                let wait = ExecObserver::store_wait_scope(&self.observer);
                let completion = self.store.submit(&keys);
                drop(wait);
                let pending = PendingFetch {
                    entries,
                    completion,
                    timer,
                };
                if pending.completion.is_ready() {
                    // Synchronous store (or an asynchronous one that beat
                    // us): resolve inline, byte-identical to the blocking
                    // `try_get_many` path.
                    self.finish_pending(pending);
                    if let Some((entry, value)) = self.prefetched.pop_front() {
                        return self.apply_prefetched(entry, value);
                    }
                    // Batch failure: fall through to the singleton path.
                } else {
                    if let Some(obs) = &self.observer {
                        obs.on_park(w, self.heap.len());
                    }
                    self.pending_fetch = Some(pending);
                    return TryStepOutcome::Pending;
                }
            }
        }
        if self.singleton_debt > 0 {
            self.singleton_debt -= 1;
        }
        if let Some(entry) = self.heap.pop() {
            let timer = ExecObserver::maybe_timer(&self.observer);
            let wait = ExecObserver::store_wait_scope(&self.observer);
            let out = get_with_retry(self.store, &entry.key, policy, attempts_allowed);
            drop(wait);
            let latency_ns = timer.map_or(0, |t| t.elapsed_ns());
            out.record(&mut self.fault);
            match out.result {
                Ok(value) => {
                    let info = self.apply_value(&entry, value.unwrap_or(0.0));
                    self.debit_remaining(entry.importance);
                    if self.is_exact() {
                        self.canonicalize_estimates();
                    }
                    self.observe_step("retrieved", &info, latency_ns);
                    TryStepOutcome::Retrieved(info)
                }
                Err(error) => {
                    // First deferral of this key: move its mass out of the
                    // heap's importance sum and count it exactly once.
                    self.fault.deferrals += 1;
                    self.debit_remaining(entry.importance);
                    self.deferred_importance += entry.importance;
                    self.deferred.push_back(entry);
                    self.observe_defer(&entry.key, entry.importance, &error, true);
                    TryStepOutcome::Deferred {
                        key: entry.key,
                        importance: entry.importance,
                        error,
                    }
                }
            }
        } else if let Some(entry) = self.deferred.pop_front() {
            let timer = ExecObserver::maybe_timer(&self.observer);
            let wait = ExecObserver::store_wait_scope(&self.observer);
            let out = get_with_retry(self.store, &entry.key, policy, attempts_allowed);
            drop(wait);
            let latency_ns = timer.map_or(0, |t| t.elapsed_ns());
            out.record(&mut self.fault);
            match out.result {
                Ok(value) => {
                    self.fault.recoveries += 1;
                    let info = self.apply_value(&entry, value.unwrap_or(0.0));
                    self.debit_deferred(entry.importance);
                    if self.is_exact() {
                        self.canonicalize_estimates();
                    }
                    self.observe_step("recovered", &info, latency_ns);
                    TryStepOutcome::Recovered(info)
                }
                Err(error) => {
                    // Re-deferral: back of the queue, no new deferral count.
                    self.deferred.push_back(entry);
                    self.observe_defer(&entry.key, entry.importance, &error, false);
                    TryStepOutcome::Deferred {
                        key: entry.key,
                        importance: entry.importance,
                        error,
                    }
                }
            }
        } else {
            TryStepOutcome::Exhausted
        }
    }

    /// Drives [`ProgressiveExecutor::try_step`] until the estimates are
    /// exact, the attempt budget runs out, or a full pass over the deferral
    /// queue recovers nothing (which means every remaining fault is
    /// persistent under the current store state — re-attempting without an
    /// external change, e.g. `FaultInjectingStore::heal`, would loop
    /// forever).
    pub fn drain_with_faults(&mut self, policy: &RetryPolicy) -> DrainStatus {
        loop {
            match self.drain_with_faults_budgeted(policy, usize::MAX) {
                Some(status) => return status,
                // An unbounded budget only yields when an asynchronous
                // prefetch is in flight; with nothing better to do, block
                // on it and continue.
                None => {
                    debug_assert!(
                        self.fetch_pending(),
                        "an unbounded drain yields only on a parked fetch"
                    );
                    self.resolve_pending_blocking();
                }
            }
        }
    }

    /// Step-budgeted variant of [`ProgressiveExecutor::drain_with_faults`]:
    /// runs at most `max_steps` fallible steps, then hands control back.
    ///
    /// Returns `Some(status)` when a terminal state was reached within the
    /// budget, `None` when the budget expired first — the caller re-invokes
    /// later to continue exactly where evaluation stopped.  This is the
    /// scheduling primitive the `batchbb-serve` worker pool slices batches
    /// with, so one huge batch cannot starve the others.
    ///
    /// Fairness caveat: once the heap is drained, concluding `Degraded`
    /// requires one *full* fruitless pass over the deferral queue, so a
    /// budget smaller than [`ProgressiveExecutor::deferred_count`] cannot
    /// make progress in that phase — pass at least
    /// `max_steps.max(self.deferred_count())`.
    pub fn drain_with_faults_budgeted(
        &mut self,
        policy: &RetryPolicy,
        max_steps: usize,
    ) -> Option<DrainStatus> {
        self.drain_observed(policy, max_steps, None)
    }

    /// Bound-targeted variant of
    /// [`ProgressiveExecutor::drain_with_faults_budgeted`]: additionally
    /// stops — with [`DrainStatus::BoundReached`] — as soon as the
    /// certified worst-case bound ([`DegradationReport::worst_case_bound`],
    /// i.e. `K^α · max ι_p` over pending ∪ deferred mass) is `<= epsilon`.
    ///
    /// This is the paper's answer-at-certified-error contract: the caller
    /// names a penalty target ε and gets back the cheapest prefix whose
    /// Theorem-1 certificate meets it. The target is checked *before* each
    /// step, so a batch admitted with an already-satisfied target performs
    /// zero retrievals. An exact drain still reports
    /// [`DrainStatus::Exact`] (exactness beats the weaker certificate);
    /// `epsilon` below zero or `NaN` never triggers, making the call
    /// equivalent to the untargeted drain.
    pub fn drain_with_faults_budgeted_to_bound(
        &mut self,
        policy: &RetryPolicy,
        max_steps: usize,
        epsilon: f64,
        k_abs_sum: f64,
    ) -> Option<DrainStatus> {
        self.drain_observed(policy, max_steps, Some((epsilon, k_abs_sum)))
    }

    fn drain_observed(
        &mut self,
        policy: &RetryPolicy,
        max_steps: usize,
        target: Option<(f64, f64)>,
    ) -> Option<DrainStatus> {
        let status = self.drain_loop(policy, max_steps, target);
        if let Some(status) = status {
            if let Some(obs) = &self.observer {
                let label = match status {
                    DrainStatus::Exact => "exact",
                    DrainStatus::Degraded => "degraded",
                    DrainStatus::BudgetExhausted => "budget_exhausted",
                    DrainStatus::BoundReached => "bound_reached",
                };
                obs.on_finish(label, self.retrieved, self.is_exact(), &self.fault);
            }
        }
        status
    }

    fn drain_loop(
        &mut self,
        policy: &RetryPolicy,
        max_steps: usize,
        target: Option<(f64, f64)>,
    ) -> Option<DrainStatus> {
        let mut remaining = max_steps;
        loop {
            if let Some((epsilon, k_abs_sum)) = target {
                if self.is_exact() {
                    return Some(DrainStatus::Exact);
                }
                if self.certified_worst_case_bound(k_abs_sum) <= epsilon {
                    return Some(DrainStatus::BoundReached);
                }
            }
            if self.heap.is_empty() && self.prefetched.is_empty() && self.pending_fetch.is_none() {
                if self.deferred.is_empty() {
                    return Some(DrainStatus::Exact);
                }
                let queue_len = self.deferred.len();
                if remaining < queue_len {
                    // Can't complete a full deferral pass within the
                    // budget, and a partial pass proves nothing about
                    // persistence — yield to the caller instead.
                    return None;
                }
                remaining -= queue_len;
                let mut recovered_any = false;
                for _ in 0..queue_len {
                    match self.try_step(policy) {
                        TryStepOutcome::Recovered(_) | TryStepOutcome::Retrieved(_) => {
                            recovered_any = true;
                        }
                        TryStepOutcome::Deferred { .. } => {}
                        TryStepOutcome::BudgetExhausted => {
                            return Some(DrainStatus::BudgetExhausted)
                        }
                        // Unreachable in the deferral phase (prefetches
                        // only start from the heap), but yielding is the
                        // safe answer.
                        TryStepOutcome::Pending => return None,
                        TryStepOutcome::Exhausted => return Some(DrainStatus::Exact),
                    }
                }
                if !recovered_any && !self.deferred.is_empty() {
                    return Some(DrainStatus::Degraded);
                }
            } else {
                if remaining == 0 {
                    return None;
                }
                remaining -= 1;
                match self.try_step(policy) {
                    TryStepOutcome::BudgetExhausted => return Some(DrainStatus::BudgetExhausted),
                    TryStepOutcome::Exhausted => return Some(DrainStatus::Exact),
                    // The fetch is in flight: yield instead of spinning.
                    // No step ran, so the caller is owed no progress; it
                    // re-enters (or parks the batch) once the completion
                    // lands — see `fetch_pending`/`fetch_ready`.
                    TryStepOutcome::Pending => return None,
                    _ => {}
                }
            }
        }
    }

    /// Advances up to `steps` retrievals; returns how many actually ran.
    pub fn run(&mut self, steps: usize) -> usize {
        let mut done = 0;
        while done < steps && self.step().is_some() {
            done += 1;
        }
        done
    }

    /// Drains the heap, making the estimates exact. Returns total
    /// retrievals performed by this call.
    pub fn run_to_end(&mut self) -> usize {
        let mut done = 0;
        while self.step().is_some() {
            done += 1;
        }
        if let Some(obs) = &self.observer {
            let exact = self.is_exact();
            let status = if exact { "exact" } else { "degraded" };
            obs.on_finish(status, self.retrieved, exact, &self.fault);
        }
        done
    }

    /// The current progressive estimates (exact after the heap drains).
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// Number of coefficients retrieved so far.
    pub fn retrieved(&self) -> usize {
        self.retrieved
    }

    /// The coefficients retrieved so far with the values currently on
    /// record (post any [`ProgressiveExecutor::apply_update`] repairs),
    /// sorted by key.
    ///
    /// Together with canonical finalization this is a *replay witness*:
    /// once evaluation is exact, the estimates are a pure function of these
    /// entries, so a serial re-evaluation against a store holding exactly
    /// these values reproduces the final estimates bit for bit — the
    /// determinism check the concurrent-serving tests rest on.
    pub fn retrieved_entries(&self) -> Vec<(CoeffKey, f64)> {
        let mut entries: Vec<(CoeffKey, f64)> = self.seen.iter().map(|(k, &v)| (*k, v)).collect();
        entries.sort_unstable_by_key(|e| e.0);
        entries
    }

    /// Entries owned by a parked asynchronous prefetch (0 when none).
    fn pending_len(&self) -> usize {
        self.pending_fetch.as_ref().map_or(0, |p| p.entries.len())
    }

    /// Number of coefficients still pending in normal progression order —
    /// in the heap, prefetched-but-unapplied, or owned by a parked
    /// asynchronous prefetch (deferred coefficients are counted by
    /// [`ProgressiveExecutor::deferred_count`]).
    pub fn remaining(&self) -> usize {
        self.heap.len() + self.prefetched.len() + self.pending_len()
    }

    /// True while a batched prefetch submitted to an asynchronous store is
    /// outstanding.  A budgeted drain that yielded with work still pending
    /// and this flag set is *parked*, not out of budget: the serve pool
    /// shelves such a batch and advances another instead of busy-waiting.
    pub fn fetch_pending(&self) -> bool {
        self.pending_fetch.is_some()
    }

    /// True when the parked prefetch (if any) has landed, i.e. the next
    /// `try_step` will make progress without blocking. `None`-like `false`
    /// when nothing is parked.
    pub fn fetch_ready(&self) -> bool {
        self.pending_fetch
            .as_ref()
            .is_some_and(|p| p.completion.is_ready())
    }

    /// Number of coefficients parked in the deferral queue.
    pub fn deferred_count(&self) -> usize {
        self.deferred.len()
    }

    /// Σ ι_p over the deferral queue.
    pub fn deferred_importance(&self) -> f64 {
        self.deferred_importance
    }

    /// The keys currently parked in the deferral queue, in queue order.
    ///
    /// In sharded serving this is the attribution surface: mapping each
    /// deferred key through `batchbb_storage::shard_of` names the shard
    /// whose failure deferred it, turning a batch's `DegradationReport`
    /// into a per-shard blast-radius account.
    pub fn deferred_keys(&self) -> Vec<CoeffKey> {
        self.deferred.iter().map(|e| e.key).collect()
    }

    /// Fault-path counters accumulated by this executor's
    /// [`ProgressiveExecutor::try_step`] calls.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault
    }

    /// True when evaluation is exact: nothing pending (in the heap, the
    /// prefetch buffer, or a parked asynchronous prefetch) *and* nothing
    /// deferred.
    pub fn is_exact(&self) -> bool {
        self.heap.is_empty()
            && self.prefetched.is_empty()
            && self.pending_fetch.is_none()
            && self.deferred.is_empty()
    }

    /// The importance of the next coefficient to be applied.  The prefetch
    /// buffer front — or the first entry of a parked asynchronous prefetch
    /// — when present, *is* the progression maximum: it was popped from
    /// the top of the heap, so every remaining heap entry ranks at or
    /// below it.
    pub fn next_importance(&self) -> Option<f64> {
        self.prefetched
            .front()
            .map(|(e, _)| e.importance)
            .or_else(|| {
                self.pending_fetch
                    .as_ref()
                    .and_then(|p| p.entries.first().map(|e| e.importance))
            })
            .or_else(|| self.heap.peek().map(|e| e.importance))
    }

    /// Repairs the progressive state after the underlying view changed:
    /// coefficient `key` gained `delta` (e.g. a tuple insert added
    /// `delta = weight·(point transform)[key]`, see
    /// `batchbb_relation::cube::point_entries`).
    ///
    /// Contract: the caller updates the *store* first (so unretrieved
    /// coefficients are read fresh later), then calls this for every
    /// changed key so that already-retrieved coefficients are re-applied.
    /// After a full repair, running to completion yields the exact results
    /// on the updated database — progressive evaluation and the paper's
    /// `O((2δ+1)^d log^d N)` update path compose.
    ///
    /// Repaired values mirror the stores' near-zero eviction: every
    /// `MutableStore::add` and `VersionedStore::publish` drops a slot
    /// whose post-delta magnitude is ≤ 1e-13, after which reads return
    /// exactly `0.0` — so the repair snaps such values to `0.0` too
    /// (backing out the residual from the estimates). Without the snap, a
    /// repaired executor would carry the tiny residual while a restarted
    /// one reads zero, and the two could never be bit-identical.
    pub fn apply_update(&mut self, key: &CoeffKey, delta: f64) {
        if delta == 0.0 {
            return;
        }
        if let Some(seen) = self.seen.get_mut(key) {
            *seen += delta;
            let column = self
                .columns
                .get(key)
                .expect("seen keys come from the master list");
            for &(qi, c) in column {
                self.estimates[qi as usize] += c * delta;
            }
            if seen.abs() <= STORE_ZERO_TOL && *seen != 0.0 {
                let residual = *seen;
                *seen = 0.0;
                for &(qi, c) in column {
                    self.estimates[qi as usize] -= c * residual;
                }
            }
        }
        // A prefetched-but-unapplied value was read from the store *before*
        // the update landed, so it needs the same repair as a seen key —
        // applied to the buffered value, since it has not reached the
        // estimates yet.
        for (entry, value) in &mut self.prefetched {
            if entry.key == *key {
                *value += delta;
                if value.abs() <= STORE_ZERO_TOL {
                    *value = 0.0;
                }
            }
        }
        // A parked asynchronous prefetch that includes the updated key is
        // abandoned wholesale: its read raced the write, so the buffered
        // verdicts cannot be trusted.  The entries return to the heap (their
        // importance was never debited) and are re-fetched from the updated
        // store; the dropped completion's read finishes harmlessly in the
        // background.  Fetches not touching the key keep flying — their
        // pre- and post-update values are identical.
        if self
            .pending_fetch
            .as_ref()
            .is_some_and(|p| p.entries.iter().any(|e| e.key == *key))
        {
            let pending = self.pending_fetch.take().expect("presence just checked");
            for entry in pending.entries {
                self.heap.push(entry);
            }
        }
        // Unretrieved keys need no repair: their importance is query-side
        // only, and their value will be read from the (updated) store.
        //
        // An already-exact executor gets no further steps, so the exactness
        // invariant — estimates are the canonical fold of `seen` — must be
        // restored here rather than by the (absent) next step.
        if self.is_exact() {
            self.canonicalize_estimates();
        }
    }

    /// Batched [`ProgressiveExecutor::apply_update`]: repairs the
    /// progressive state for a whole update batch in input order, with
    /// bit-identical results to calling `apply_update` once per entry —
    /// including the per-delta near-zero snap mirroring the stores'
    /// eviction tolerance.
    ///
    /// The batched path amortizes the per-entry costs: runs of equal keys
    /// (the natural shape of support-grouped streaming updates, see
    /// `batchbb_relation::cube::batch_point_entries`) share one
    /// `seen`/column lookup, the prefetch buffer is walked once instead of
    /// once per entry, and a parked asynchronous prefetch intersecting
    /// *any* updated key is abandoned exactly once (one heap push-back
    /// instead of one per intersecting entry — though the sequential path
    /// also abandons at most once, it pays the intersection scan per
    /// entry).
    pub fn apply_update_batch(&mut self, entries: &[(CoeffKey, f64)]) {
        // Seen/estimate repairs, one key-run at a time.  Per-key deltas are
        // applied sequentially in input order, and deltas to distinct keys
        // touch disjoint `seen` slots, so this equals the sequential path
        // bit for bit (estimate increments for one key fire in input
        // order; increments for different keys commute only through `+=`
        // on values that each repair recomputes independently — the same
        // interleaving the sequential path produces, since it too walks
        // entries in input order).
        let mut i = 0;
        while i < entries.len() {
            let key = &entries[i].0;
            let mut j = i;
            if let Some(seen) = self.seen.get_mut(key) {
                let column = self
                    .columns
                    .get(key)
                    .expect("seen keys come from the master list");
                while j < entries.len() && entries[j].0 == *key {
                    let delta = entries[j].1;
                    if delta != 0.0 {
                        *seen += delta;
                        for &(qi, c) in column {
                            self.estimates[qi as usize] += c * delta;
                        }
                        if seen.abs() <= STORE_ZERO_TOL && *seen != 0.0 {
                            let residual = *seen;
                            *seen = 0.0;
                            for &(qi, c) in column {
                                self.estimates[qi as usize] -= c * residual;
                            }
                        }
                    }
                    j += 1;
                }
            } else {
                while j < entries.len() && entries[j].0 == *key {
                    j += 1;
                }
            }
            i = j;
        }
        // Prefetched-but-unapplied values: one pass over the buffer, each
        // slot absorbing its key's deltas in input order.
        for (entry, value) in &mut self.prefetched {
            for (key, delta) in entries {
                if *delta != 0.0 && entry.key == *key {
                    *value += delta;
                    if value.abs() <= STORE_ZERO_TOL {
                        *value = 0.0;
                    }
                }
            }
        }
        // A parked asynchronous prefetch touching any updated key is
        // abandoned once; untouched fetches keep flying (their pre- and
        // post-update values are identical).
        if self.pending_fetch.as_ref().is_some_and(|p| {
            p.entries
                .iter()
                .any(|e| entries.iter().any(|(k, d)| *d != 0.0 && e.key == *k))
        }) {
            let pending = self.pending_fetch.take().expect("presence just checked");
            for entry in pending.entries {
                self.heap.push(entry);
            }
        }
        // Same exactness re-canonicalization as `apply_update`: with no
        // steps left to fire it, restore the invariant here.
        if self.is_exact() {
            self.canonicalize_estimates();
        }
    }

    /// Repairs this executor across a published version delta — the
    /// reader half of the MVCC protocol (DESIGN.md §13).
    ///
    /// `delta` is the concatenated update entries between the executor's
    /// old and new pinned versions, in publish order, as returned by
    /// `VersionedStore::delta_between` / `VersionView::advance_to_current`.
    /// Contract: the caller advances the *view* first (so re-fetched and
    /// unretrieved coefficients read the new version), then calls this so
    /// already-retrieved coefficients are re-applied.  After the repair,
    /// running to completion finalizes bit-identical to a fresh executor
    /// started on the new version.
    pub fn advance_version(&mut self, delta: &[(CoeffKey, f64)]) {
        self.apply_update_batch(delta);
    }

    /// Theorem 2's estimate of the penalty expected on a random unit-norm
    /// database: `(n_total − 1)^{-1} · Σ_{unretrieved ξ} ι_p(ξ)`, where
    /// `n_total` is the domain size `N^d`.  The paper: "the proof of
    /// Theorem 2 provides an estimate of the average penalty."  Maintained
    /// incrementally, so each call is O(1).  Meaningful for quadratic
    /// penalties (homogeneity 2); scale by the data's squared norm for
    /// non-unit databases.
    pub fn expected_penalty(&self, n_total: usize) -> f64 {
        assert!(n_total > 1, "need a non-trivial domain");
        self.remaining_importance / (n_total as f64 - 1.0)
    }

    /// Theorem 1's guaranteed worst-case penalty bound for the *current*
    /// progressive estimate: `K^α · ι_p(ξ′)`, where `K = Σ_ξ |Δ̂[ξ]|` and
    /// `ξ′` is the most important unretrieved coefficient. Zero once exact.
    pub fn worst_case_bound(&self, k_abs_sum: f64) -> f64 {
        match self.next_importance() {
            Some(iota) => k_abs_sum.powf(self.homogeneity) * iota,
            None => 0.0,
        }
    }

    /// Theorem 1's bound extended to the fault-tolerant setting:
    /// `K^α · max ι_p` over pending ∪ deferred coefficients — the same
    /// value [`ProgressiveExecutor::degradation_report`] publishes as
    /// `worst_case_bound`, without cloning the estimates. Zero once exact.
    pub fn certified_worst_case_bound(&self, k_abs_sum: f64) -> f64 {
        match self.max_unresolved_importance() {
            Some(iota) => k_abs_sum.powf(self.homogeneity) * iota,
            None => 0.0,
        }
    }

    /// The penalty's homogeneity degree α (`ι_p(c·ξ) = c^α · ι_p(ξ)`),
    /// Theorem 1's exponent on `K`.
    pub fn homogeneity(&self) -> f64 {
        self.homogeneity
    }

    /// The importances `ι_p` of every unresolved coefficient — pending (in
    /// the heap, the prefetch buffer, or a parked asynchronous prefetch)
    /// and deferred — in no particular order. Admission controllers sort this descending to price a batch:
    /// entry `t` of the sorted list is the certified-bound driver after `t`
    /// retrievals, so "steps until `K^α·ι ≤ ε`" falls out directly.
    pub fn pending_importances(&self) -> Vec<f64> {
        self.heap
            .iter()
            .map(|e| e.importance)
            .chain(self.prefetched.iter().map(|(e, _)| e.importance))
            .chain(
                self.pending_fetch
                    .iter()
                    .flat_map(|p| p.entries.iter().map(|e| e.importance)),
            )
            .chain(self.deferred.iter().map(|e| e.importance))
            .collect()
    }

    /// Snapshot of the degraded-result contract: current estimates, the
    /// deferred population, and penalty bounds that account for deferred
    /// mass (see [`DegradationReport`]).
    ///
    /// `n_total` is the domain size `N^d` (Theorem 2) and `k_abs_sum` the
    /// data's coefficient ℓ¹-norm `K` (Theorem 1). Both bounds shrink
    /// monotonically as `try_step` retrieves or recovers coefficients.
    pub fn degradation_report(&self, n_total: usize, k_abs_sum: f64) -> DegradationReport {
        assert!(n_total > 1, "need a non-trivial domain");
        let max_unresolved = self.max_unresolved_importance();
        DegradationReport {
            estimates: self.estimates.clone(),
            deferred: self
                .deferred
                .iter()
                .map(|e| (e.key, e.importance))
                .collect(),
            deferred_importance: self.deferred_importance,
            expected_penalty: (self.remaining_importance + self.deferred_importance)
                / (n_total as f64 - 1.0),
            worst_case_bound: match max_unresolved {
                Some(iota) => k_abs_sum.powf(self.homogeneity) * iota,
                None => 0.0,
            },
            fault: self.fault,
            is_exact: self.is_exact(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_penalty::{DiagonalQuadratic, Sse};
    use batchbb_query::{HyperRect, LinearStrategy, RangeSum, WaveletStrategy};
    use batchbb_relation::{Attribute, FrequencyDistribution, Schema};
    use batchbb_storage::MemoryStore;
    use batchbb_tensor::Shape;
    use batchbb_wavelet::Wavelet;

    fn fixture() -> (FrequencyDistribution, MemoryStore, Shape, WaveletStrategy) {
        let schema = Schema::new(vec![
            Attribute::new("x", 0.0, 16.0, 4),
            Attribute::new("y", 0.0, 16.0, 4),
        ])
        .unwrap();
        let mut dfd = FrequencyDistribution::new(schema);
        for i in 0..16 {
            for j in 0..16 {
                let w = ((i * 7 + j * 3) % 5) as f64;
                if w != 0.0 {
                    dfd.insert_binned(&[i, j], w);
                }
            }
        }
        let strategy = WaveletStrategy::new(Wavelet::Db4);
        let store = MemoryStore::from_entries(strategy.transform_data(dfd.tensor()));
        let shape = dfd.schema().domain();
        (dfd, store, shape, strategy)
    }

    fn queries() -> Vec<RangeSum> {
        vec![
            RangeSum::count(HyperRect::new(vec![0, 0], vec![7, 7])),
            RangeSum::count(HyperRect::new(vec![8, 0], vec![15, 15])),
            RangeSum::sum(HyperRect::new(vec![2, 3], vec![12, 14]), 1),
        ]
    }

    #[test]
    fn drains_to_exact_results() {
        let (dfd, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        assert!(!exec.is_exact());
        exec.run_to_end();
        assert!(exec.is_exact());
        for (q, est) in batch.queries().iter().zip(exec.estimates()) {
            let truth = q.eval_direct(dfd.tensor());
            assert!(
                (est - truth).abs() < 1e-6 * truth.abs().max(1.0),
                "{est} vs {truth}"
            );
        }
    }

    #[test]
    fn importance_is_monotone_nonincreasing() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut last = f64::INFINITY;
        while let Some(info) = exec.step() {
            assert!(
                info.importance <= last + 1e-12,
                "importance must be non-increasing: {} after {last}",
                info.importance
            );
            last = info.importance;
        }
    }

    #[test]
    fn one_retrieval_advances_all_needing_queries() {
        let (_, store, shape, strategy) = fixture();
        let q = RangeSum::count(HyperRect::new(vec![0, 0], vec![15, 15]));
        let batch =
            BatchQueries::rewrite(&strategy, vec![q.clone(), q.clone(), q], &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let info = exec.step().unwrap();
        assert_eq!(info.queries_advanced, 3);
        let e = exec.estimates();
        assert_eq!(e[0], e[1]);
        assert_eq!(e[1], e[2]);
    }

    #[test]
    fn retrieval_count_equals_master_list() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let master_len = MasterList::build(&batch).len();
        store.reset_stats();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let steps = exec.run_to_end();
        assert_eq!(steps, master_len);
        assert_eq!(store.stats().retrievals, master_len as u64);
        assert!(
            master_len < batch.total_coefficients(),
            "sharing must beat per-query totals"
        );
    }

    #[test]
    fn worst_case_bound_decreases_and_hits_zero() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let k = store.abs_sum();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut last = f64::INFINITY;
        loop {
            let bound = exec.worst_case_bound(k);
            assert!(bound <= last + 1e-9);
            last = bound;
            if exec.step().is_none() {
                break;
            }
        }
        assert_eq!(exec.worst_case_bound(k), 0.0);
    }

    #[test]
    fn penalty_choice_changes_progression_order() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let cursored = DiagonalQuadratic::cursored(3, &[2], 1000.0);
        let mut sse_exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut cur_exec = ProgressiveExecutor::new(&batch, &cursored, &store);
        let sse_first: Vec<CoeffKey> = (0..5)
            .filter_map(|_| sse_exec.step().map(|i| i.key))
            .collect();
        let cur_first: Vec<CoeffKey> = (0..5)
            .filter_map(|_| cur_exec.step().map(|i| i.key))
            .collect();
        assert_ne!(
            sse_first, cur_first,
            "a heavily boosted query must reorder the progression"
        );
    }

    #[test]
    fn updates_mid_progression_stay_exact() {
        use batchbb_relation::cube::point_entries;
        use batchbb_storage::SharedStore;

        let (mut dfd, store, shape, strategy) = fixture();
        let shared = SharedStore::from_entries(strategy.transform_data(dfd.tensor()));
        drop(store);
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let total = MasterList::build(&batch).len();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &shared);
        exec.run(total / 2);
        // Two tuples arrive mid-progression: update the shared store, then
        // repair the executor's already-retrieved coefficients.
        for (coords, weight) in [(vec![3usize, 3usize], 2.0), (vec![12, 9], 1.0)] {
            dfd.insert_binned(&coords, weight);
            for (k, d) in point_entries(&shape, &coords, weight, batchbb_wavelet::Wavelet::Db4) {
                shared.add_shared(k, d);
                exec.apply_update(&k, d);
            }
        }
        exec.run_to_end();
        for (q, est) in batch.queries().iter().zip(exec.estimates()) {
            let truth = q.eval_direct(dfd.tensor());
            assert!(
                (est - truth).abs() < 1e-6 * truth.abs().max(1.0),
                "{est} vs {truth}"
            );
        }
    }

    #[test]
    fn apply_update_repairs_seen_keys_only() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let first = exec.step().unwrap();
        let before = exec.estimates().to_vec();
        // Updating a retrieved key shifts estimates by column · delta.
        exec.apply_update(&first.key, 2.0);
        let master = MasterList::build(&batch);
        for (i, (&a, &b)) in exec.estimates().iter().zip(&before).enumerate() {
            let c = master
                .column(&first.key)
                .unwrap()
                .iter()
                .find(|(qi, _)| *qi as usize == i)
                .map(|&(_, c)| c)
                .unwrap_or(0.0);
            assert!((a - (b + 2.0 * c)).abs() < 1e-12);
        }
        // Updating an unretrieved key is a no-op on estimates.
        let pending = exec.next_importance().expect("more coefficients pending");
        let _ = pending;
        let snapshot = exec.estimates().to_vec();
        let unseen_key = {
            // find some key in the master list that is not the first
            master
                .iter()
                .map(|(k, _)| *k)
                .find(|k| *k != first.key)
                .unwrap()
        };
        exec.apply_update(&unseen_key, 5.0);
        assert_eq!(exec.estimates(), snapshot.as_slice());
    }

    #[test]
    fn expected_penalty_matches_optimality_module() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let n_total = shape.len();
        // Compare the incremental tracker against the reference recompute
        // from the optimality module at several prefixes.
        let mut kept = std::collections::HashSet::new();
        loop {
            let fast = exec.expected_penalty(n_total);
            let slow = crate::optimality::expected_penalty(&batch, &Sse, &kept, n_total);
            // incremental subtraction accumulates rounding ~1e-16 per
            // step relative to the initial total
            assert!(
                (fast - slow).abs() < 1e-6 * slow + 1e-9,
                "{fast} vs {slow} after {} steps",
                exec.retrieved()
            );
            match exec.step() {
                Some(info) => {
                    kept.insert(info.key);
                }
                None => break,
            }
        }
        assert_eq!(exec.expected_penalty(n_total), 0.0);
    }

    #[test]
    fn run_respects_step_budget() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let total = exec.remaining();
        assert_eq!(exec.run(3), 3);
        assert_eq!(exec.retrieved(), 3);
        assert_eq!(exec.remaining(), total - 3);
        assert_eq!(exec.run(usize::MAX), total - 3);
    }

    #[test]
    fn nan_importance_does_not_poison_the_heap() {
        // Regression: a penalty returning NaN for some columns used to
        // float those keys to the top of the max-heap and turn
        // `remaining_importance` (hence every penalty bound) into NaN.
        struct PathologicalPenalty;
        impl batchbb_penalty::Penalty for PathologicalPenalty {
            fn name(&self) -> String {
                "pathological".into()
            }
            fn evaluate(&self, errors: &[f64]) -> f64 {
                errors.iter().map(|e| e * e).sum()
            }
            fn importance(&self, column: &[(usize, f64)], _batch_size: usize) -> f64 {
                // NaN whenever query 0 participates; finite otherwise.
                if column.iter().any(|&(qi, _)| qi == 0) {
                    f64::NAN
                } else {
                    column.iter().map(|&(_, c)| c * c).sum()
                }
            }
            fn homogeneity(&self) -> f64 {
                2.0
            }
        }

        let (dfd, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &PathologicalPenalty, &store);
        // Every derived quantity stays finite...
        assert!(exec.expected_penalty(shape.len()).is_finite());
        let mut last = f64::INFINITY;
        while let Some(info) = exec.step() {
            assert!(!info.importance.is_nan(), "NaN importance leaked");
            assert!(info.importance <= last + 1e-12, "heap order broken");
            last = info.importance;
            assert!(exec.expected_penalty(shape.len()).is_finite());
        }
        // ...and the run still converges to the exact results.
        for (q, est) in batch.queries().iter().zip(exec.estimates()) {
            let truth = q.eval_direct(dfd.tensor());
            assert!((est - truth).abs() < 1e-6 * truth.abs().max(1.0));
        }
    }

    #[test]
    fn try_step_on_healthy_store_matches_step() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut a = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut b = ProgressiveExecutor::new(&batch, &Sse, &store);
        let policy = RetryPolicy::default();
        loop {
            let sa = a.step();
            match (sa, b.try_step(&policy)) {
                (Some(ia), TryStepOutcome::Retrieved(ib)) => assert_eq!(ia, ib),
                (None, TryStepOutcome::Exhausted) => break,
                (sa, sb) => panic!("paths diverged: {sa:?} vs {sb:?}"),
            }
        }
        assert_eq!(a.estimates(), b.estimates());
        let fs = b.fault_stats();
        assert_eq!(fs.attempts, fs.successes);
        assert_eq!(fs.deferrals, 0);
        assert!(fs.attempts_reconcile());
    }

    #[test]
    fn permanent_faults_defer_and_recover_after_heal() {
        use batchbb_storage::{FaultInjectingStore, FaultPlan};

        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        // Fault-free reference run.
        let mut reference = ProgressiveExecutor::new(&batch, &Sse, &store);
        reference.run_to_end();

        // Make the first three progression keys permanently unavailable.
        let mut probe = ProgressiveExecutor::new(&batch, &Sse, &store);
        let broken: Vec<CoeffKey> = (0..3).map(|_| probe.step().unwrap().key).collect();
        let faulty = FaultInjectingStore::new(
            &store,
            FaultPlan::new(1).with_permanent_keys(broken.iter().copied()),
        );

        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &faulty);
        let policy = RetryPolicy::default();
        assert_eq!(exec.drain_with_faults(&policy), DrainStatus::Degraded);
        assert!(!exec.is_exact());
        assert_eq!(exec.deferred_count(), 3);
        let report = exec.degradation_report(shape.len(), store.abs_sum());
        assert!(!report.is_exact);
        assert_eq!(report.deferred.len(), 3);
        assert!(report.worst_case_bound > 0.0);
        assert!(report.fault.deferrals_reconcile(3));
        assert!(report.fault.attempts_reconcile());

        // Repair the store: a further drain recovers everything and the
        // estimates match the fault-free run exactly.
        faulty.heal();
        assert_eq!(exec.drain_with_faults(&policy), DrainStatus::Exact);
        assert!(exec.is_exact());
        // Canonical finalization makes the finals order-independent, so the
        // match is exact even though deferral reordered the contributions.
        assert_eq!(exec.estimates(), reference.estimates());
        let fs = exec.fault_stats();
        assert_eq!(fs.recoveries, 3);
        assert!(fs.deferrals_reconcile(0));
        let final_report = exec.degradation_report(shape.len(), store.abs_sum());
        assert_eq!(final_report.worst_case_bound, 0.0);
        assert_eq!(final_report.expected_penalty, 0.0);
    }

    #[test]
    fn budgeted_drain_slices_to_the_same_result() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let policy = RetryPolicy::default();
        let mut whole = ProgressiveExecutor::new(&batch, &Sse, &store);
        assert_eq!(whole.drain_with_faults(&policy), DrainStatus::Exact);
        let mut sliced = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut yields = 0;
        let status = loop {
            match sliced.drain_with_faults_budgeted(&policy, 5) {
                Some(status) => break status,
                None => yields += 1,
            }
        };
        assert_eq!(status, DrainStatus::Exact);
        assert!(yields > 0, "a 5-step budget must yield at least once");
        assert_eq!(sliced.estimates(), whole.estimates());
        assert_eq!(sliced.retrieved_entries(), whole.retrieved_entries());
    }

    #[test]
    fn budget_below_deferral_queue_yields_without_progress() {
        use batchbb_storage::{FaultInjectingStore, FaultPlan};

        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut probe = ProgressiveExecutor::new(&batch, &Sse, &store);
        let broken: Vec<CoeffKey> = (0..3).map(|_| probe.step().unwrap().key).collect();
        let faulty = FaultInjectingStore::new(
            &store,
            FaultPlan::new(1).with_permanent_keys(broken.iter().copied()),
        );
        let policy = RetryPolicy::default();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &faulty);
        // Drain the heap in slices; the three broken keys defer.
        while exec.remaining() > 0 {
            let _ = exec.drain_with_faults_budgeted(&policy, 7);
        }
        assert_eq!(exec.deferred_count(), 3);
        let attempts_before = exec.fault_stats().attempts;
        // A budget below the queue length cannot run a conclusive pass.
        assert_eq!(exec.drain_with_faults_budgeted(&policy, 2), None);
        assert_eq!(exec.fault_stats().attempts, attempts_before);
        // A full pass concludes Degraded.
        assert_eq!(
            exec.drain_with_faults_budgeted(&policy, exec.deferred_count()),
            Some(DrainStatus::Degraded)
        );
    }

    #[test]
    fn prefetch_windows_are_bit_exact_and_step_equivalent() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let policy = RetryPolicy::default();
        let k = store.abs_sum();
        let n_total = shape.len();

        // Reference: W = 1 (today's path), recording the per-step bound
        // trajectory and fault counters.
        let mut reference = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut ref_trace = Vec::new();
        let mut ref_penalties = Vec::new();
        loop {
            match reference.try_step(&policy) {
                TryStepOutcome::Retrieved(info) => {
                    ref_trace.push((info, reference.worst_case_bound(k), reference.fault_stats()));
                    ref_penalties.push(reference.expected_penalty(n_total));
                }
                TryStepOutcome::Exhausted => break,
                other => panic!("healthy store must not produce {other:?}"),
            }
        }

        for w in [4usize, 16, 64] {
            let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store).with_prefetch_window(w);
            let mut trace = Vec::new();
            let mut penalties = Vec::new();
            loop {
                match exec.try_step(&policy) {
                    TryStepOutcome::Retrieved(info) => {
                        trace.push((info, exec.worst_case_bound(k), exec.fault_stats()));
                        penalties.push(exec.expected_penalty(n_total));
                    }
                    TryStepOutcome::Exhausted => break,
                    other => panic!("healthy store must not produce {other:?}"),
                }
            }
            // Same steps, same per-step Thm-1 bound, same fault counters
            // at every step — not just the same finals.
            assert_eq!(trace, ref_trace, "W={w} diverged from W=1");
            // Thm-2's numerator is accumulated in map iteration order at
            // construction, so it carries last-bit noise between *any* two
            // executor instances; compare with a relative tolerance.
            for (step, (a, b)) in penalties.iter().zip(&ref_penalties).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs() + 1e-12,
                    "W={w} step {step}: expected penalty {a} vs {b}"
                );
            }
            assert_eq!(
                exec.estimates(),
                reference.estimates(),
                "finals must be bit-exact for W={w}"
            );
            assert_eq!(exec.retrieved_entries(), reference.retrieved_entries());
            assert!(exec.is_exact());
            assert!(exec.fault_stats().attempts_reconcile());
        }
    }

    #[test]
    fn prefetch_failure_defers_only_failing_keys() {
        use batchbb_storage::{FaultInjectingStore, FaultPlan};

        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut reference = ProgressiveExecutor::new(&batch, &Sse, &store);
        reference.run_to_end();

        // Break two keys from the head of the progression: a W=8 prefetch
        // covering them fails as a whole, and the singleton fallback must
        // defer exactly those two.
        let mut probe = ProgressiveExecutor::new(&batch, &Sse, &store);
        let broken: Vec<CoeffKey> = (0..2).map(|_| probe.step().unwrap().key).collect();
        let faulty = FaultInjectingStore::new(
            &store,
            FaultPlan::new(7).with_permanent_keys(broken.iter().copied()),
        );
        let policy = RetryPolicy::default();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &faulty).with_prefetch_window(8);
        assert_eq!(exec.drain_with_faults(&policy), DrainStatus::Degraded);
        let mut deferred: Vec<CoeffKey> = exec
            .degradation_report(shape.len(), store.abs_sum())
            .deferred
            .iter()
            .map(|(k, _)| *k)
            .collect();
        deferred.sort_unstable();
        let mut expected = broken.clone();
        expected.sort_unstable();
        assert_eq!(deferred, expected, "only the failing keys defer");
        assert!(exec.fault_stats().attempts_reconcile());

        faulty.heal();
        assert_eq!(exec.drain_with_faults(&policy), DrainStatus::Exact);
        assert_eq!(
            exec.estimates(),
            reference.estimates(),
            "degraded-then-healed finals must match the fault-free run"
        );
    }

    #[test]
    fn prefetch_respects_attempt_budget() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let policy = RetryPolicy {
            total_attempt_budget: Some(5),
            ..RetryPolicy::default()
        };
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store).with_prefetch_window(64);
        assert_eq!(
            exec.drain_with_faults(&policy),
            DrainStatus::BudgetExhausted,
            "a 5-attempt budget cannot finish the batch"
        );
        // The prefetch window is clamped to the budget: exactly 5 attempts
        // were recorded, never fetched-but-unaffordable coefficients.
        assert_eq!(exec.fault_stats().attempts, 5);
        assert_eq!(exec.retrieved(), 5);
        assert_eq!(exec.try_step(&policy), TryStepOutcome::BudgetExhausted);
        let unlimited = RetryPolicy::default();
        assert_eq!(exec.drain_with_faults(&unlimited), DrainStatus::Exact);
    }

    #[test]
    fn prefetched_values_are_repaired_by_updates() {
        use batchbb_relation::cube::point_entries;
        use batchbb_storage::SharedStore;

        let (mut dfd, _store, shape, strategy) = fixture();
        let shared = SharedStore::from_entries(strategy.transform_data(dfd.tensor()));
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let policy = RetryPolicy::default();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &shared).with_prefetch_window(1024);
        // One fallible step prefetches the whole master list; all but one
        // coefficient now sit in the buffer, fetched pre-update.
        let _ = exec.try_step(&policy);
        assert!(exec.remaining() > 0);
        // A tuple arrives: update the store, then repair the executor.
        dfd.insert_binned(&[5, 5], 3.0);
        for (k, d) in point_entries(&shape, &[5, 5], 3.0, batchbb_wavelet::Wavelet::Db4) {
            shared.add_shared(k, d);
            exec.apply_update(&k, d);
        }
        assert_eq!(exec.drain_with_faults(&policy), DrainStatus::Exact);
        for (q, est) in batch.queries().iter().zip(exec.estimates()) {
            let truth = q.eval_direct(dfd.tensor());
            assert!(
                (est - truth).abs() < 1e-6 * truth.abs().max(1.0),
                "{est} vs {truth}"
            );
        }
    }

    #[test]
    fn attempt_budget_halts_the_drain() {
        use batchbb_storage::{FaultInjectingStore, FaultPlan};

        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let faulty = FaultInjectingStore::new(&store, FaultPlan::new(2).with_transient_rate(0.4));
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &faulty);
        let policy = RetryPolicy {
            total_attempt_budget: Some(10),
            ..RetryPolicy::default()
        };
        assert_eq!(
            exec.drain_with_faults(&policy),
            DrainStatus::BudgetExhausted
        );
        assert!(exec.fault_stats().attempts <= 10);
        assert_eq!(
            exec.try_step(&policy),
            TryStepOutcome::BudgetExhausted,
            "budget stays exhausted"
        );
        // Lifting the budget completes the evaluation.
        let unlimited = RetryPolicy {
            max_attempts: 64,
            ..RetryPolicy::default()
        };
        assert_eq!(exec.drain_with_faults(&unlimited), DrainStatus::Exact);
        assert!(exec.is_exact());
    }
}
