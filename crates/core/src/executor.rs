//! The progressive executor (steps 4–5 of Batch-Biggest-B).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use batchbb_penalty::Penalty;
use batchbb_storage::CoefficientStore;
use batchbb_tensor::CoeffKey;

use crate::{BatchQueries, MasterList};

/// A heap entry ordered by importance (ties broken by key for
/// reproducibility).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    importance: f64,
    key: CoeffKey,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on importance; ties resolved toward the smaller key so
        // every component (executor, bounded variant, optimality ranking)
        // agrees on one deterministic progression order.
        self.importance
            .total_cmp(&other.importance)
            .then_with(|| other.key.cmp(&self.key))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// What one [`ProgressiveExecutor::step`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepInfo {
    /// The coefficient key retrieved.
    pub key: CoeffKey,
    /// Its importance `ι_p(ξ)` under the executor's penalty.
    pub importance: f64,
    /// The retrieved data coefficient (0 when absent from the store).
    pub value: f64,
    /// How many queries this retrieval advanced.
    pub queries_advanced: usize,
}

/// Progressive evaluation state for one batch under one penalty function.
///
/// The penalty is supplied *at query time* — the same preprocessed store
/// serves any penalty, which is the flexibility argument of §5 ("an online
/// approximation of the query batch leads to a much more flexible scheme").
pub struct ProgressiveExecutor<'a> {
    store: &'a dyn CoefficientStore,
    columns: HashMap<CoeffKey, Vec<(u32, f64)>>,
    heap: BinaryHeap<HeapEntry>,
    estimates: Vec<f64>,
    homogeneity: f64,
    retrieved: usize,
    /// Keys already pulled from the store, with the value observed — needed
    /// to repair estimates when the view is updated mid-progression.
    seen: HashMap<CoeffKey, f64>,
    /// Σ ι_p over the coefficients still in the heap — Theorem 2's
    /// expected-penalty numerator, maintained incrementally.
    remaining_importance: f64,
}

impl<'a> ProgressiveExecutor<'a> {
    /// Builds the executor: merges the batch into a master list, scores
    /// every coefficient with `ι_p`, and heapifies.
    pub fn new(batch: &BatchQueries, penalty: &dyn Penalty, store: &'a dyn CoefficientStore) -> Self {
        let master = MasterList::build(batch);
        ProgressiveExecutor::from_master(batch.len(), master, penalty, store)
    }

    /// Builds from a pre-merged master list (lets callers reuse the merge
    /// across penalties).
    pub fn from_master(
        batch_size: usize,
        master: MasterList,
        penalty: &dyn Penalty,
        store: &'a dyn CoefficientStore,
    ) -> Self {
        let columns = master.into_columns();
        let mut heap = BinaryHeap::with_capacity(columns.len());
        let mut remaining_importance = 0.0;
        for (key, column) in &columns {
            let column_usize: Vec<(usize, f64)> =
                column.iter().map(|&(i, v)| (i as usize, v)).collect();
            let importance = penalty.importance(&column_usize, batch_size);
            remaining_importance += importance;
            heap.push(HeapEntry {
                importance,
                key: *key,
            });
        }
        ProgressiveExecutor {
            store,
            columns,
            heap,
            estimates: vec![0.0; batch_size],
            homogeneity: penalty.homogeneity(),
            retrieved: 0,
            seen: HashMap::new(),
            remaining_importance,
        }
    }

    /// Extracts the most important unretrieved coefficient, fetches its
    /// data value, and advances every query that needs it (Equation 2).
    /// Returns `None` once the heap is empty — at which point
    /// [`ProgressiveExecutor::estimates`] holds the exact results.
    pub fn step(&mut self) -> Option<StepInfo> {
        let entry = self.heap.pop()?;
        let value = self.store.get(&entry.key).unwrap_or(0.0);
        let column = self
            .columns
            .get(&entry.key)
            .expect("heap keys come from the master list");
        if value != 0.0 {
            for &(qi, c) in column {
                self.estimates[qi as usize] += c * value;
            }
        }
        self.seen.insert(entry.key, value);
        self.retrieved += 1;
        self.remaining_importance = if self.heap.is_empty() {
            0.0 // avoid leaving rounding residue after the final step
        } else {
            (self.remaining_importance - entry.importance).max(0.0)
        };
        Some(StepInfo {
            key: entry.key,
            importance: entry.importance,
            value,
            queries_advanced: column.len(),
        })
    }

    /// Advances up to `steps` retrievals; returns how many actually ran.
    pub fn run(&mut self, steps: usize) -> usize {
        let mut done = 0;
        while done < steps && self.step().is_some() {
            done += 1;
        }
        done
    }

    /// Drains the heap, making the estimates exact. Returns total
    /// retrievals performed by this call.
    pub fn run_to_end(&mut self) -> usize {
        let mut done = 0;
        while self.step().is_some() {
            done += 1;
        }
        done
    }

    /// The current progressive estimates (exact after the heap drains).
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// Number of coefficients retrieved so far.
    pub fn retrieved(&self) -> usize {
        self.retrieved
    }

    /// Number of coefficients still pending.
    pub fn remaining(&self) -> usize {
        self.heap.len()
    }

    /// True when evaluation is exact.
    pub fn is_exact(&self) -> bool {
        self.heap.is_empty()
    }

    /// The importance of the next coefficient to be retrieved.
    pub fn next_importance(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.importance)
    }

    /// Repairs the progressive state after the underlying view changed:
    /// coefficient `key` gained `delta` (e.g. a tuple insert added
    /// `delta = weight·(point transform)[key]`, see
    /// `batchbb_relation::cube::point_entries`).
    ///
    /// Contract: the caller updates the *store* first (so unretrieved
    /// coefficients are read fresh later), then calls this for every
    /// changed key so that already-retrieved coefficients are re-applied.
    /// After a full repair, running to completion yields the exact results
    /// on the updated database — progressive evaluation and the paper's
    /// `O((2δ+1)^d log^d N)` update path compose.
    pub fn apply_update(&mut self, key: &CoeffKey, delta: f64) {
        if delta == 0.0 {
            return;
        }
        if let Some(seen) = self.seen.get_mut(key) {
            *seen += delta;
            let column = self
                .columns
                .get(key)
                .expect("seen keys come from the master list");
            for &(qi, c) in column {
                self.estimates[qi as usize] += c * delta;
            }
        }
        // Unretrieved keys need no repair: their importance is query-side
        // only, and their value will be read from the (updated) store.
    }

    /// Theorem 2's estimate of the penalty expected on a random unit-norm
    /// database: `(n_total − 1)^{-1} · Σ_{unretrieved ξ} ι_p(ξ)`, where
    /// `n_total` is the domain size `N^d`.  The paper: "the proof of
    /// Theorem 2 provides an estimate of the average penalty."  Maintained
    /// incrementally, so each call is O(1).  Meaningful for quadratic
    /// penalties (homogeneity 2); scale by the data's squared norm for
    /// non-unit databases.
    pub fn expected_penalty(&self, n_total: usize) -> f64 {
        assert!(n_total > 1, "need a non-trivial domain");
        self.remaining_importance / (n_total as f64 - 1.0)
    }

    /// Theorem 1's guaranteed worst-case penalty bound for the *current*
    /// progressive estimate: `K^α · ι_p(ξ′)`, where `K = Σ_ξ |Δ̂[ξ]|` and
    /// `ξ′` is the most important unretrieved coefficient. Zero once exact.
    pub fn worst_case_bound(&self, k_abs_sum: f64) -> f64 {
        match self.next_importance() {
            Some(iota) => k_abs_sum.powf(self.homogeneity) * iota,
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_penalty::{DiagonalQuadratic, Sse};
    use batchbb_query::{HyperRect, LinearStrategy, RangeSum, WaveletStrategy};
    use batchbb_relation::{Attribute, FrequencyDistribution, Schema};
    use batchbb_storage::MemoryStore;
    use batchbb_tensor::Shape;
    use batchbb_wavelet::Wavelet;

    fn fixture() -> (FrequencyDistribution, MemoryStore, Shape, WaveletStrategy) {
        let schema = Schema::new(vec![
            Attribute::new("x", 0.0, 16.0, 4),
            Attribute::new("y", 0.0, 16.0, 4),
        ])
        .unwrap();
        let mut dfd = FrequencyDistribution::new(schema);
        for i in 0..16 {
            for j in 0..16 {
                let w = ((i * 7 + j * 3) % 5) as f64;
                if w != 0.0 {
                    dfd.insert_binned(&[i, j], w);
                }
            }
        }
        let strategy = WaveletStrategy::new(Wavelet::Db4);
        let store = MemoryStore::from_entries(strategy.transform_data(dfd.tensor()));
        let shape = dfd.schema().domain();
        (dfd, store, shape, strategy)
    }

    fn queries() -> Vec<RangeSum> {
        vec![
            RangeSum::count(HyperRect::new(vec![0, 0], vec![7, 7])),
            RangeSum::count(HyperRect::new(vec![8, 0], vec![15, 15])),
            RangeSum::sum(HyperRect::new(vec![2, 3], vec![12, 14]), 1),
        ]
    }

    #[test]
    fn drains_to_exact_results() {
        let (dfd, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        assert!(!exec.is_exact());
        exec.run_to_end();
        assert!(exec.is_exact());
        for (q, est) in batch.queries().iter().zip(exec.estimates()) {
            let truth = q.eval_direct(dfd.tensor());
            assert!(
                (est - truth).abs() < 1e-6 * truth.abs().max(1.0),
                "{est} vs {truth}"
            );
        }
    }

    #[test]
    fn importance_is_monotone_nonincreasing() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut last = f64::INFINITY;
        while let Some(info) = exec.step() {
            assert!(
                info.importance <= last + 1e-12,
                "importance must be non-increasing: {} after {last}",
                info.importance
            );
            last = info.importance;
        }
    }

    #[test]
    fn one_retrieval_advances_all_needing_queries() {
        let (_, store, shape, strategy) = fixture();
        let q = RangeSum::count(HyperRect::new(vec![0, 0], vec![15, 15]));
        let batch =
            BatchQueries::rewrite(&strategy, vec![q.clone(), q.clone(), q], &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let info = exec.step().unwrap();
        assert_eq!(info.queries_advanced, 3);
        let e = exec.estimates();
        assert_eq!(e[0], e[1]);
        assert_eq!(e[1], e[2]);
    }

    #[test]
    fn retrieval_count_equals_master_list() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let master_len = MasterList::build(&batch).len();
        store.reset_stats();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let steps = exec.run_to_end();
        assert_eq!(steps, master_len);
        assert_eq!(store.stats().retrievals, master_len as u64);
        assert!(
            master_len < batch.total_coefficients(),
            "sharing must beat per-query totals"
        );
    }

    #[test]
    fn worst_case_bound_decreases_and_hits_zero() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let k = store.abs_sum();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut last = f64::INFINITY;
        loop {
            let bound = exec.worst_case_bound(k);
            assert!(bound <= last + 1e-9);
            last = bound;
            if exec.step().is_none() {
                break;
            }
        }
        assert_eq!(exec.worst_case_bound(k), 0.0);
    }

    #[test]
    fn penalty_choice_changes_progression_order() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let cursored = DiagonalQuadratic::cursored(3, &[2], 1000.0);
        let mut sse_exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut cur_exec = ProgressiveExecutor::new(&batch, &cursored, &store);
        let sse_first: Vec<CoeffKey> = (0..5).filter_map(|_| sse_exec.step().map(|i| i.key)).collect();
        let cur_first: Vec<CoeffKey> = (0..5).filter_map(|_| cur_exec.step().map(|i| i.key)).collect();
        assert_ne!(
            sse_first, cur_first,
            "a heavily boosted query must reorder the progression"
        );
    }

    #[test]
    fn updates_mid_progression_stay_exact() {
        use batchbb_relation::cube::point_entries;
        use batchbb_storage::SharedStore;

        let (mut dfd, store, shape, strategy) = fixture();
        let shared = SharedStore::from_entries(strategy.transform_data(dfd.tensor()));
        drop(store);
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let total = MasterList::build(&batch).len();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &shared);
        exec.run(total / 2);
        // Two tuples arrive mid-progression: update the shared store, then
        // repair the executor's already-retrieved coefficients.
        for (coords, weight) in [(vec![3usize, 3usize], 2.0), (vec![12, 9], 1.0)] {
            dfd.insert_binned(&coords, weight);
            for (k, d) in point_entries(&shape, &coords, weight, batchbb_wavelet::Wavelet::Db4) {
                shared.add_shared(k, d);
                exec.apply_update(&k, d);
            }
        }
        exec.run_to_end();
        for (q, est) in batch.queries().iter().zip(exec.estimates()) {
            let truth = q.eval_direct(dfd.tensor());
            assert!(
                (est - truth).abs() < 1e-6 * truth.abs().max(1.0),
                "{est} vs {truth}"
            );
        }
    }

    #[test]
    fn apply_update_repairs_seen_keys_only() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let first = exec.step().unwrap();
        let before = exec.estimates().to_vec();
        // Updating a retrieved key shifts estimates by column · delta.
        exec.apply_update(&first.key, 2.0);
        let master = MasterList::build(&batch);
        for (i, (&a, &b)) in exec.estimates().iter().zip(&before).enumerate() {
            let c = master
                .column(&first.key)
                .unwrap()
                .iter()
                .find(|(qi, _)| *qi as usize == i)
                .map(|&(_, c)| c)
                .unwrap_or(0.0);
            assert!((a - (b + 2.0 * c)).abs() < 1e-12);
        }
        // Updating an unretrieved key is a no-op on estimates.
        let pending = exec
            .next_importance()
            .expect("more coefficients pending");
        let _ = pending;
        let snapshot = exec.estimates().to_vec();
        let unseen_key = {
            // find some key in the master list that is not the first
            master
                .iter()
                .map(|(k, _)| *k)
                .find(|k| *k != first.key)
                .unwrap()
        };
        exec.apply_update(&unseen_key, 5.0);
        assert_eq!(exec.estimates(), snapshot.as_slice());
    }

    #[test]
    fn expected_penalty_matches_optimality_module() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let n_total = shape.len();
        // Compare the incremental tracker against the reference recompute
        // from the optimality module at several prefixes.
        let mut kept = std::collections::HashSet::new();
        loop {
            let fast = exec.expected_penalty(n_total);
            let slow = crate::optimality::expected_penalty(&batch, &Sse, &kept, n_total);
            // incremental subtraction accumulates rounding ~1e-16 per
            // step relative to the initial total
            assert!(
                (fast - slow).abs() < 1e-6 * slow + 1e-9,
                "{fast} vs {slow} after {} steps",
                exec.retrieved()
            );
            match exec.step() {
                Some(info) => {
                    kept.insert(info.key);
                }
                None => break,
            }
        }
        assert_eq!(exec.expected_penalty(n_total), 0.0);
    }

    #[test]
    fn run_respects_step_budget() {
        let (_, store, shape, strategy) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries(), &shape).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let total = exec.remaining();
        assert_eq!(exec.run(3), 3);
        assert_eq!(exec.retrieved(), 3);
        assert_eq!(exec.remaining(), total - 3);
        assert_eq!(exec.run(usize::MAX), total - 3);
    }
}
