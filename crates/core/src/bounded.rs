//! Bounded-workspace evaluation (§2.2).
//!
//! "It is of practical interest to avoid simultaneous materialization of
//! all of the query coefficients and reduce workspace requirements."
//! This module implements a two-pass variant of Batch-Biggest-B whose
//! resident state never exceeds `O(budget + max single-query coefficient
//! count)`:
//!
//! * **Pass 1 (score):** rewrite queries one at a time, streaming their
//!   coefficient keys into a bounded top-`budget` selection of the most
//!   important coefficients (importance accumulates across queries — SSE
//!   and any diagonal quadratic accumulate exactly; see
//!   [`evaluate_bounded`] for the restriction).
//! * **Retrieve:** fetch exactly the selected coefficients.
//! * **Pass 2 (apply):** rewrite queries one at a time again, dotting each
//!   against the retrieved values.
//!
//! The price is doing the query rewrite twice; the reward is that the
//! master list is never materialized.

use std::collections::HashMap;

use batchbb_penalty::Penalty;
use batchbb_query::{LinearStrategy, RangeSum, StrategyError};
use batchbb_storage::CoefficientStore;
use batchbb_tensor::{CoeffKey, Shape};

/// Result of a bounded-workspace evaluation.
#[derive(Debug, Clone)]
pub struct BoundedResult {
    /// Per-query progressive estimates using the selected coefficients.
    pub estimates: Vec<f64>,
    /// Number of coefficients retrieved (≤ the requested budget).
    pub retrieved: usize,
    /// Peak number of scored coefficient keys held resident in pass 1.
    pub peak_workspace: usize,
}

/// Evaluates `queries` with at most `budget` coefficient retrievals while
/// keeping the workspace bounded.
///
/// Restriction: importance must accumulate additively per query —
/// `ι_p(ξ) = Σ_i contribution(q̂ᵢ[ξ])` — which holds for every *diagonal*
/// quadratic penalty (SSE, cursored SSE).  Cross-query quadratic forms need
/// the full master list; use [`crate::ProgressiveExecutor`] for those.
pub fn evaluate_bounded(
    strategy: &dyn LinearStrategy,
    queries: &[RangeSum],
    domain: &Shape,
    store: &dyn CoefficientStore,
    penalty: &dyn Penalty,
    budget: usize,
) -> Result<BoundedResult, StrategyError> {
    let s = queries.len();
    // Pass 1: accumulate importance per key, pruning to a working cap.
    // The cap is 4× the budget: pruning only removes keys whose importance
    // can no longer reach the running top-`budget` cut, and a slack factor
    // keeps the amortized cost low while staying O(budget).
    let cap = budget.saturating_mul(4).max(16);
    let mut scores: HashMap<CoeffKey, f64> = HashMap::with_capacity(cap.min(1 << 20));
    let mut peak = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        let coeffs = strategy.query_coefficients(q, domain)?;
        for &(key, v) in coeffs.entries() {
            let contribution = penalty.importance(&[(qi, v)], s);
            *scores.entry(key).or_insert(0.0) += contribution;
        }
        peak = peak.max(scores.len());
        if scores.len() > cap {
            // Keep the current top `cap/2` keys. Keys dropped here may be
            // re-inserted by later queries; their earlier contributions are
            // lost, which makes the selection approximate — the exactness
            // of the *estimates* for the selected set is unaffected.
            let mut ranked: Vec<(CoeffKey, f64)> = scores.drain().collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            ranked.truncate(cap / 2);
            scores = ranked.into_iter().collect();
        }
    }
    let mut ranked: Vec<(CoeffKey, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(budget);

    // Retrieve the selected coefficients.
    let mut values: HashMap<CoeffKey, f64> = HashMap::with_capacity(ranked.len());
    for (key, _) in &ranked {
        values.insert(*key, store.get(key).unwrap_or(0.0));
    }

    // Pass 2: apply.
    let mut estimates = vec![0.0; s];
    for (qi, q) in queries.iter().enumerate() {
        let coeffs = strategy.query_coefficients(q, domain)?;
        estimates[qi] = coeffs
            .entries()
            .iter()
            .filter_map(|(k, v)| values.get(k).map(|w| v * w))
            .sum();
    }

    Ok(BoundedResult {
        estimates,
        retrieved: values.len(),
        peak_workspace: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchQueries, ProgressiveExecutor};
    use batchbb_penalty::Sse;
    use batchbb_query::{HyperRect, WaveletStrategy};
    use batchbb_storage::MemoryStore;
    use batchbb_tensor::Tensor;
    use batchbb_wavelet::Wavelet;

    fn fixture() -> (Tensor, MemoryStore, Shape, WaveletStrategy, Vec<RangeSum>) {
        let shape = Shape::new(vec![32, 32]).unwrap();
        let data = Tensor::from_fn(shape.clone(), |ix| ((ix[0] * ix[1] + 3) % 6) as f64);
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let queries: Vec<RangeSum> = (0..8)
            .map(|i| {
                RangeSum::count(HyperRect::new(vec![i * 4, 0], vec![i * 4 + 3, 31]))
            })
            .collect();
        (data, store, shape, strategy, queries)
    }

    #[test]
    fn unlimited_budget_is_exact() {
        let (data, store, shape, strategy, queries) = fixture();
        let r = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, usize::MAX / 8)
            .unwrap();
        for (q, est) in queries.iter().zip(&r.estimates) {
            let truth = q.eval_direct(&data);
            assert!((est - truth).abs() < 1e-6, "{est} vs {truth}");
        }
    }

    #[test]
    fn matches_full_executor_selection() {
        // With additive (SSE) importance and a budget below the master-list
        // size, the bounded variant must select the same top-B keys and
        // produce the same estimates as running the executor B steps.
        let (_, store, shape, strategy, queries) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries.clone(), &shape).unwrap();
        let master_len = crate::MasterList::build(&batch).len();
        let b = master_len / 2;
        assert!(b > 0, "fixture must produce a non-trivial master list");
        let bounded = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, b).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        exec.run(b);
        for (a, e) in bounded.estimates.iter().zip(exec.estimates()) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
        assert_eq!(bounded.retrieved, b);
    }

    #[test]
    fn workspace_stays_bounded() {
        let (_, store, shape, strategy, queries) = fixture();
        let budget = 8;
        let r = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, budget).unwrap();
        assert!(
            r.peak_workspace <= budget * 4 + 200,
            "workspace {} should be O(budget)",
            r.peak_workspace
        );
    }

    #[test]
    fn zero_budget_returns_zero_estimates() {
        let (_, store, shape, strategy, queries) = fixture();
        let r = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, 0).unwrap();
        assert!(r.estimates.iter().all(|&e| e == 0.0));
        assert_eq!(r.retrieved, 0);
    }
}
