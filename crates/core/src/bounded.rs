//! Bounded-workspace evaluation (§2.2).
//!
//! "It is of practical interest to avoid simultaneous materialization of
//! all of the query coefficients and reduce workspace requirements."
//! This module implements a two-pass variant of Batch-Biggest-B whose
//! resident state never exceeds `O(budget + max single-query coefficient
//! count)`:
//!
//! * **Pass 1 (score):** rewrite queries one at a time, streaming their
//!   coefficient keys into a bounded top-`budget` selection of the most
//!   important coefficients (importance accumulates across queries — SSE
//!   and any diagonal quadratic accumulate exactly; see
//!   [`evaluate_bounded`] for the restriction).
//! * **Retrieve:** fetch exactly the selected coefficients.
//! * **Pass 2 (apply):** rewrite queries one at a time again, dotting each
//!   against the retrieved values.
//!
//! The price is doing the query rewrite twice; the reward is that the
//! master list is never materialized.

use std::collections::HashMap;

use batchbb_obs::SpanTimer;
use batchbb_penalty::Penalty;
use batchbb_query::{LinearStrategy, RangeSum, StrategyError};
use batchbb_storage::{retry::get_with_retry, CoefficientStore, FaultStats, RetryPolicy};
use batchbb_tensor::{CoeffKey, Shape};

use crate::observe::{ExecObserver, StepObservation};
use crate::StepInfo;

/// Result of a bounded-workspace evaluation.
#[derive(Debug, Clone)]
pub struct BoundedResult {
    /// Per-query progressive estimates using the selected coefficients.
    pub estimates: Vec<f64>,
    /// Number of coefficients retrieved (≤ the requested budget).
    pub retrieved: usize,
    /// Peak number of scored coefficient keys held resident in pass 1.
    pub peak_workspace: usize,
}

/// Result of a fallible bounded-workspace evaluation: the estimates use
/// every coefficient that could be retrieved; the rest are reported as
/// deferred with their accumulated importance, mirroring
/// [`crate::DegradationReport`].
#[derive(Debug, Clone)]
pub struct BoundedFallibleResult {
    /// Per-query estimates over the successfully retrieved selection.
    pub estimates: Vec<f64>,
    /// Coefficients successfully retrieved.
    pub retrieved: usize,
    /// Selected coefficients whose retrieval failed after retries, as
    /// `(key, accumulated importance)`, most important first.
    pub deferred: Vec<(CoeffKey, f64)>,
    /// Σ importance over `deferred`.
    pub deferred_importance: f64,
    /// Peak number of scored coefficient keys held resident in pass 1.
    pub peak_workspace: usize,
    /// Fault-path counters for the retrieval phase.
    pub fault: FaultStats,
}

/// Evaluates `queries` with at most `budget` coefficient retrievals while
/// keeping the workspace bounded.
///
/// Restriction: importance must accumulate additively per query —
/// `ι_p(ξ) = Σ_i contribution(q̂ᵢ[ξ])` — which holds for every *diagonal*
/// quadratic penalty (SSE, cursored SSE).  Cross-query quadratic forms need
/// the full master list; use [`crate::ProgressiveExecutor`] for those.
pub fn evaluate_bounded(
    strategy: &dyn LinearStrategy,
    queries: &[RangeSum],
    domain: &Shape,
    store: &dyn CoefficientStore,
    penalty: &dyn Penalty,
    budget: usize,
) -> Result<BoundedResult, StrategyError> {
    evaluate_bounded_observed(strategy, queries, domain, store, penalty, budget, None)
}

/// [`evaluate_bounded`] with an optional [`ExecObserver`] emitting one
/// `exec.step` event per retrieval in the shared schema (label the observer
/// with `with_engine("bounded")` so the events are tagged truthfully).
/// `remaining_importance` tracks the not-yet-retrieved tail of the
/// selection, so the penalty-bound columns are comparable with the full
/// executor's over the selected set.
pub fn evaluate_bounded_observed(
    strategy: &dyn LinearStrategy,
    queries: &[RangeSum],
    domain: &Shape,
    store: &dyn CoefficientStore,
    penalty: &dyn Penalty,
    budget: usize,
    observer: Option<&ExecObserver>,
) -> Result<BoundedResult, StrategyError> {
    let (ranked, peak) = score_and_select(strategy, queries, domain, penalty, budget)?;
    if let Some(obs) = observer {
        obs.on_start(queries.len(), ranked.len());
    }

    // Retrieve the selected coefficients (most important first).
    let mut values: HashMap<CoeffKey, f64> = HashMap::with_capacity(ranked.len());
    let mut remaining: f64 = ranked.iter().map(|&(_, i)| i).sum();
    let fault = FaultStats::default();
    for (ix, &(key, importance)) in ranked.iter().enumerate() {
        let timer = observer.map(|_| SpanTimer::start());
        let value = store.get(&key).unwrap_or(0.0);
        let latency_ns = timer.map_or(0, |t| t.elapsed_ns());
        values.insert(key, value);
        remaining = if ix + 1 == ranked.len() {
            0.0
        } else {
            (remaining - importance).max(0.0)
        };
        if let Some(obs) = observer {
            let info = StepInfo {
                key,
                importance,
                value,
                queries_advanced: 0,
            };
            obs.on_step(&StepObservation {
                kind: "retrieved",
                info: &info,
                pending: ranked.len() - ix - 1,
                deferred: 0,
                remaining_importance: remaining,
                deferred_importance: 0.0,
                max_unresolved: ranked.get(ix + 1).map(|&(_, i)| i),
                homogeneity: penalty.homogeneity(),
                retrieved: ix + 1,
                fault,
                latency_ns,
            });
        }
    }

    let estimates = apply_selected(strategy, queries, domain, &values)?;
    if let Some(obs) = observer {
        obs.on_finish("exact", values.len(), true, &fault);
    }
    Ok(BoundedResult {
        estimates,
        retrieved: values.len(),
        peak_workspace: peak,
    })
}

/// Fallible twin of [`evaluate_bounded`]: retrieves the selection through
/// [`CoefficientStore::try_get`] with retries under `policy`; selected
/// coefficients that stay unavailable are excluded from the estimates and
/// reported as deferred, so the caller gets the best evaluation the store's
/// current health allows instead of a panic or an abort.
pub fn evaluate_bounded_fallible(
    strategy: &dyn LinearStrategy,
    queries: &[RangeSum],
    domain: &Shape,
    store: &dyn CoefficientStore,
    penalty: &dyn Penalty,
    budget: usize,
    policy: &RetryPolicy,
) -> Result<BoundedFallibleResult, StrategyError> {
    evaluate_bounded_fallible_observed(
        strategy, queries, domain, store, penalty, budget, policy, None,
    )
}

/// [`evaluate_bounded_fallible`] with an optional [`ExecObserver`] (see
/// [`evaluate_bounded_observed`]). A deferral caused by a failed retrieval
/// emits `exec.defer`; deferrals caused by an exhausted attempt budget are
/// counted in [`FaultStats`] but attempt nothing, so they emit no event.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_bounded_fallible_observed(
    strategy: &dyn LinearStrategy,
    queries: &[RangeSum],
    domain: &Shape,
    store: &dyn CoefficientStore,
    penalty: &dyn Penalty,
    budget: usize,
    policy: &RetryPolicy,
    observer: Option<&ExecObserver>,
) -> Result<BoundedFallibleResult, StrategyError> {
    let (ranked, peak) = score_and_select(strategy, queries, domain, penalty, budget)?;
    if let Some(obs) = observer {
        obs.on_start(queries.len(), ranked.len());
    }

    let mut values: HashMap<CoeffKey, f64> = HashMap::with_capacity(ranked.len());
    let mut deferred: Vec<(CoeffKey, f64)> = Vec::new();
    let mut fault = FaultStats::default();
    let mut remaining: f64 = ranked.iter().map(|&(_, i)| i).sum();
    let mut deferred_mass = 0.0;
    for (ix, &(key, importance)) in ranked.iter().enumerate() {
        let attempts_allowed = match policy.total_attempt_budget {
            Some(budget) => {
                let left = budget.saturating_sub(fault.attempts);
                if left == 0 {
                    // Out of attempts: everything still unretrieved is
                    // deferred (and counted — `deferrals = recoveries +
                    // still-deferred` must hold here too). `ranked` is
                    // most-important-first, so the deferred list stays
                    // sorted that way as well.
                    fault.deferrals += 1;
                    deferred.push((key, importance));
                    continue;
                }
                left.min(u64::from(policy.max_attempts.max(1))) as u32
            }
            None => policy.max_attempts,
        };
        let timer = observer.map(|_| SpanTimer::start());
        let out = get_with_retry(store, &key, policy, attempts_allowed);
        let latency_ns = timer.map_or(0, |t| t.elapsed_ns());
        out.record(&mut fault);
        // The processed entry's mass leaves the pending tail either way —
        // into the estimates on success, into the deferred mass on failure.
        remaining = (remaining - importance).max(0.0);
        match out.result {
            Ok(value) => {
                values.insert(key, value.unwrap_or(0.0));
                if let Some(obs) = observer {
                    let info = StepInfo {
                        key,
                        importance,
                        value: value.unwrap_or(0.0),
                        queries_advanced: 0,
                    };
                    // The bounded variant never recovers deferrals, so the
                    // most important unresolved coefficient is whichever is
                    // larger of the deferred head (sorted descending) and
                    // the next ranked entry.
                    let max_unresolved = deferred
                        .first()
                        .map(|&(_, i)| i)
                        .into_iter()
                        .chain(ranked.get(ix + 1).map(|&(_, i)| i))
                        .fold(None::<f64>, |acc, i| Some(acc.map_or(i, |a| a.max(i))));
                    obs.on_step(&StepObservation {
                        kind: "retrieved",
                        info: &info,
                        pending: ranked.len() - ix - 1,
                        deferred: deferred.len(),
                        remaining_importance: remaining,
                        deferred_importance: deferred_mass,
                        max_unresolved,
                        homogeneity: penalty.homogeneity(),
                        retrieved: values.len(),
                        fault,
                        latency_ns,
                    });
                }
            }
            Err(error) => {
                fault.deferrals += 1;
                deferred.push((key, importance));
                deferred_mass += importance;
                if let Some(obs) = observer {
                    obs.on_defer(&key, importance, &error, true, deferred.len(), &fault);
                }
            }
        }
    }

    let estimates = apply_selected(strategy, queries, domain, &values)?;
    let deferred_importance = deferred.iter().map(|&(_, i)| i).sum();
    if let Some(obs) = observer {
        let status = if deferred.is_empty() {
            "exact"
        } else {
            "degraded"
        };
        obs.on_finish(status, values.len(), deferred.is_empty(), &fault);
    }
    Ok(BoundedFallibleResult {
        estimates,
        retrieved: values.len(),
        deferred,
        deferred_importance,
        peak_workspace: peak,
        fault,
    })
}

/// Pass 1: accumulate importance per key with a bounded working set, and
/// return the top-`budget` selection (most important first) plus the peak
/// resident key count.
fn score_and_select(
    strategy: &dyn LinearStrategy,
    queries: &[RangeSum],
    domain: &Shape,
    penalty: &dyn Penalty,
    budget: usize,
) -> Result<(Vec<(CoeffKey, f64)>, usize), StrategyError> {
    let s = queries.len();
    // The cap is 4× the budget: pruning only removes keys whose importance
    // can no longer reach the running top-`budget` cut, and a slack factor
    // keeps the amortized cost low while staying O(budget).
    let cap = budget.saturating_mul(4).max(16);
    let mut scores: HashMap<CoeffKey, f64> = HashMap::with_capacity(cap.min(1 << 20));
    let mut peak = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        let coeffs = strategy.query_coefficients(q, domain)?;
        for &(key, v) in coeffs.entries() {
            let contribution = penalty.importance(&[(qi, v)], s);
            *scores.entry(key).or_insert(0.0) += contribution;
        }
        peak = peak.max(scores.len());
        if scores.len() > cap {
            // Keep the current top `cap/2` keys. Keys dropped here may be
            // re-inserted by later queries; their earlier contributions are
            // lost, which makes the selection approximate — the exactness
            // of the *estimates* for the selected set is unaffected.
            let mut ranked: Vec<(CoeffKey, f64)> = scores.drain().collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            ranked.truncate(cap / 2);
            scores = ranked.into_iter().collect();
        }
    }
    let mut ranked: Vec<(CoeffKey, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(budget);
    Ok((ranked, peak))
}

/// Pass 2: dot each query's coefficients against the retrieved values.
fn apply_selected(
    strategy: &dyn LinearStrategy,
    queries: &[RangeSum],
    domain: &Shape,
    values: &HashMap<CoeffKey, f64>,
) -> Result<Vec<f64>, StrategyError> {
    let mut estimates = vec![0.0; queries.len()];
    for (qi, q) in queries.iter().enumerate() {
        let coeffs = strategy.query_coefficients(q, domain)?;
        estimates[qi] = coeffs
            .entries()
            .iter()
            .filter_map(|(k, v)| values.get(k).map(|w| v * w))
            .sum();
    }
    Ok(estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchQueries, ProgressiveExecutor};
    use batchbb_penalty::Sse;
    use batchbb_query::{HyperRect, WaveletStrategy};
    use batchbb_storage::MemoryStore;
    use batchbb_tensor::Tensor;
    use batchbb_wavelet::Wavelet;

    fn fixture() -> (Tensor, MemoryStore, Shape, WaveletStrategy, Vec<RangeSum>) {
        let shape = Shape::new(vec![32, 32]).unwrap();
        let data = Tensor::from_fn(shape.clone(), |ix| ((ix[0] * ix[1] + 3) % 6) as f64);
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let queries: Vec<RangeSum> = (0..8)
            .map(|i| RangeSum::count(HyperRect::new(vec![i * 4, 0], vec![i * 4 + 3, 31])))
            .collect();
        (data, store, shape, strategy, queries)
    }

    #[test]
    fn unlimited_budget_is_exact() {
        let (data, store, shape, strategy, queries) = fixture();
        let r =
            evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, usize::MAX / 8).unwrap();
        for (q, est) in queries.iter().zip(&r.estimates) {
            let truth = q.eval_direct(&data);
            assert!((est - truth).abs() < 1e-6, "{est} vs {truth}");
        }
    }

    #[test]
    fn matches_full_executor_selection() {
        // With additive (SSE) importance and a budget below the master-list
        // size, the bounded variant must select the same top-B keys and
        // produce the same estimates as running the executor B steps.
        let (_, store, shape, strategy, queries) = fixture();
        let batch = BatchQueries::rewrite(&strategy, queries.clone(), &shape).unwrap();
        let master_len = crate::MasterList::build(&batch).len();
        let b = master_len / 2;
        assert!(b > 0, "fixture must produce a non-trivial master list");
        let bounded = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, b).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        exec.run(b);
        for (a, e) in bounded.estimates.iter().zip(exec.estimates()) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
        assert_eq!(bounded.retrieved, b);
    }

    #[test]
    fn workspace_stays_bounded() {
        let (_, store, shape, strategy, queries) = fixture();
        let budget = 8;
        let r = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, budget).unwrap();
        assert!(
            r.peak_workspace <= budget * 4 + 200,
            "workspace {} should be O(budget)",
            r.peak_workspace
        );
    }

    #[test]
    fn zero_budget_returns_zero_estimates() {
        let (_, store, shape, strategy, queries) = fixture();
        let r = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, 0).unwrap();
        assert!(r.estimates.iter().all(|&e| e == 0.0));
        assert_eq!(r.retrieved, 0);
    }

    #[test]
    fn fallible_on_healthy_store_matches_infallible() {
        let (_, store, shape, strategy, queries) = fixture();
        let b = 64;
        let exact = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, b).unwrap();
        let fallible = evaluate_bounded_fallible(
            &strategy,
            &queries,
            &shape,
            &store,
            &Sse,
            b,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(fallible.estimates, exact.estimates);
        assert_eq!(fallible.retrieved, exact.retrieved);
        assert!(fallible.deferred.is_empty());
        assert_eq!(fallible.fault.attempts, fallible.fault.successes);
        assert!(fallible.fault.attempts_reconcile());
    }

    #[test]
    fn fallible_defers_unavailable_keys_and_reports_importance() {
        use batchbb_storage::{FaultInjectingStore, FaultPlan};

        let (_, store, shape, strategy, queries) = fixture();
        let b = 32;
        // Break the most important selected key. (The aligned fixture
        // produces fewer distinct keys than the budget, so size assertions
        // below use the actual selection size `n`.)
        let (ranked, _) = score_and_select(&strategy, &queries, &shape, &Sse, b).unwrap();
        let n = ranked.len();
        assert!((2..=b).contains(&n));
        let broken = ranked[0];
        let faulty =
            FaultInjectingStore::new(&store, FaultPlan::new(4).with_permanent_keys([broken.0]));
        let r = evaluate_bounded_fallible(
            &strategy,
            &queries,
            &shape,
            &faulty,
            &Sse,
            b,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(r.deferred, vec![broken]);
        assert!((r.deferred_importance - broken.1).abs() < 1e-12);
        assert_eq!(r.retrieved, n - 1);
        assert_eq!(r.fault.permanent_failures, 1);
        assert!(r.fault.deferrals_reconcile(1));
        assert!(r.fault.attempts_reconcile());
        // The degraded estimates differ from exact only through the broken
        // coefficient's contributions.
        let exact = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, b).unwrap();
        let differing = r
            .estimates
            .iter()
            .zip(&exact.estimates)
            .filter(|(a, e)| (**a - **e).abs() > 1e-12)
            .count();
        assert!(differing > 0, "breaking the top key must move something");
    }

    #[test]
    fn fallible_respects_total_attempt_budget() {
        use batchbb_storage::{FaultInjectingStore, FaultPlan};

        let (_, store, shape, strategy, queries) = fixture();
        let b = 32;
        // Size the attempt budget off the actual selection: each attempt
        // retrieves at most one key, so `n/2` attempts must defer ≥ n/2 keys.
        let n = score_and_select(&strategy, &queries, &shape, &Sse, b)
            .unwrap()
            .0
            .len();
        assert!(n >= 4);
        let attempt_budget = (n / 2) as u64;
        let faulty = FaultInjectingStore::new(&store, FaultPlan::new(6).with_transient_rate(0.5));
        let policy = RetryPolicy {
            total_attempt_budget: Some(attempt_budget),
            ..RetryPolicy::default()
        };
        let r = evaluate_bounded_fallible(&strategy, &queries, &shape, &faulty, &Sse, b, &policy)
            .unwrap();
        assert!(r.fault.attempts <= attempt_budget);
        assert_eq!(r.retrieved + r.deferred.len(), n);
        assert!(
            r.deferred.len() >= n - attempt_budget as usize,
            "{} attempts cannot cover {n} keys",
            attempt_budget
        );
        assert!(r.fault.deferrals_reconcile(r.deferred.len() as u64));
        assert!(r.fault.attempts_reconcile());
    }
}
