//! The master list (step 3 of Batch-Biggest-B).

use std::collections::HashMap;

use batchbb_tensor::CoeffKey;

use crate::BatchQueries;

/// The merged coefficient list: for every distinct coefficient key touched
/// by the batch, the sparse *column* of `(query index, q̂ᵢ[ξ])` pairs.
///
/// The ratio [`MasterList::len`] / [`BatchQueries::total_coefficients`] is
/// the I/O sharing factor of Observation 1: the paper's 512-query batch
/// needs 57,456 shared retrievals instead of 923,076 unshared ones.
#[derive(Debug, Clone, Default)]
pub struct MasterList {
    columns: HashMap<CoeffKey, Vec<(u32, f64)>>,
}

impl MasterList {
    /// Merges the per-query lists of a rewritten batch.
    pub fn build(batch: &BatchQueries) -> Self {
        let mut columns: HashMap<CoeffKey, Vec<(u32, f64)>> = HashMap::new();
        for (qi, coeffs) in batch.coefficients().iter().enumerate() {
            for &(key, value) in coeffs.entries() {
                columns.entry(key).or_default().push((qi as u32, value));
            }
        }
        MasterList { columns }
    }

    /// Number of distinct coefficients — the I/O cost of exact batch
    /// evaluation.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when no query has any coefficient.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The column for one key, if any query touches it.
    pub fn column(&self, key: &CoeffKey) -> Option<&[(u32, f64)]> {
        self.columns.get(key).map(Vec::as_slice)
    }

    /// Iterates over `(key, column)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&CoeffKey, &[(u32, f64)])> {
        self.columns.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Consumes the list into its underlying map (used by the executor).
    pub(crate) fn into_columns(self) -> HashMap<CoeffKey, Vec<(u32, f64)>> {
        self.columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_query::{HyperRect, RangeSum, WaveletStrategy};
    use batchbb_tensor::Shape;
    use batchbb_wavelet::Wavelet;

    fn master(queries: Vec<RangeSum>) -> (BatchQueries, MasterList) {
        let domain = Shape::new(vec![16, 16]).unwrap();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let batch = BatchQueries::rewrite(&strategy, queries, &domain).unwrap();
        let ml = MasterList::build(&batch);
        (batch, ml)
    }

    #[test]
    fn identical_queries_share_everything() {
        let q = RangeSum::count(HyperRect::new(vec![2, 2], vec![9, 9]));
        let (batch, ml) = master(vec![q.clone(), q.clone(), q]);
        assert_eq!(ml.len() * 3, batch.total_coefficients());
        for (_, col) in ml.iter() {
            assert_eq!(col.len(), 3, "every column lists all three queries");
        }
    }

    #[test]
    fn disjoint_small_queries_share_coarse_wavelets() {
        let a = RangeSum::count(HyperRect::new(vec![0, 0], vec![7, 15]));
        let b = RangeSum::count(HyperRect::new(vec![8, 0], vec![15, 15]));
        let (batch, ml) = master(vec![a, b]);
        assert!(
            ml.len() < batch.total_coefficients(),
            "even disjoint ranges share coarse-scale coefficients"
        );
    }

    #[test]
    fn columns_preserve_values() {
        let q = RangeSum::count(HyperRect::new(vec![0, 0], vec![15, 15]));
        let (batch, ml) = master(vec![q]);
        for &(key, v) in batch.coefficients()[0].entries() {
            let col = ml.column(&key).expect("key present");
            assert_eq!(col, &[(0u32, v)]);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let (_, ml) = master(vec![]);
        assert!(ml.is_empty());
        assert_eq!(ml.len(), 0);
    }
}
