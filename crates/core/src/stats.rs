//! Progressive summary statistics over a batch of ranges (§3).
//!
//! "The three vector queries above can be used to compute AVERAGE and
//! VARIANCE of any attribute, as well as the COVARIANCE between any two
//! attributes."  [`stats_queries`] builds the COUNT / SUM / SUM-of-squares
//! triple (plus cross terms for covariance) for every range as *one*
//! batch, so Batch-Biggest-B shares their heavily overlapping coefficient
//! lists; [`decode_stats`] turns any progressive estimate vector back into
//! per-range statistics.

use batchbb_query::{derived, HyperRect, RangeSum};

/// Queries emitted per range by [`stats_queries`].
pub const QUERIES_PER_RANGE: usize = 3;

/// Queries emitted per range by [`covariance_queries`].
pub const QUERIES_PER_RANGE_COV: usize = 5;

/// Builds `[COUNT, SUM(attr), SUMSQ(attr)]` for each range, concatenated
/// in range order.
pub fn stats_queries(ranges: &[HyperRect], attr: usize) -> Vec<RangeSum> {
    ranges
        .iter()
        .flat_map(|r| {
            [
                RangeSum::count(r.clone()),
                RangeSum::sum(r.clone(), attr),
                RangeSum::sum_product(r.clone(), attr, attr),
            ]
        })
        .collect()
}

/// Builds `[COUNT, SUM(a), SUM(b), SUMSQ-cross(a·b), …]` per range for
/// covariance between attributes `a` and `b`.
pub fn covariance_queries(ranges: &[HyperRect], a: usize, b: usize) -> Vec<RangeSum> {
    ranges
        .iter()
        .flat_map(|r| {
            [
                RangeSum::count(r.clone()),
                RangeSum::sum(r.clone(), a),
                RangeSum::sum(r.clone(), b),
                RangeSum::sum_product(r.clone(), a, b),
                RangeSum::sum_product(r.clone(), a, a),
            ]
        })
        .collect()
}

/// Derived statistics for one range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeStats {
    /// Estimated tuple count.
    pub count: f64,
    /// Estimated attribute sum.
    pub sum: f64,
    /// Estimated mean (`None` when the count estimate is not positive).
    pub mean: Option<f64>,
    /// Estimated population variance (clamped at zero).
    pub variance: Option<f64>,
}

/// Decodes estimates produced against [`stats_queries`] into per-range
/// statistics. Works on progressive estimates at any point, not just exact
/// results.
pub fn decode_stats(estimates: &[f64]) -> Vec<RangeStats> {
    assert_eq!(
        estimates.len() % QUERIES_PER_RANGE,
        0,
        "estimates are not a stats batch"
    );
    estimates
        .chunks_exact(QUERIES_PER_RANGE)
        .map(|c| {
            let (count, sum, sumsq) = (c[0], c[1], c[2]);
            RangeStats {
                count,
                sum,
                mean: derived::average(sum, count),
                variance: derived::variance(sum, sumsq, count),
            }
        })
        .collect()
}

/// Decodes estimates produced against [`covariance_queries`] into per-range
/// covariances (`None` where the count estimate is not positive).
pub fn decode_covariances(estimates: &[f64]) -> Vec<Option<f64>> {
    assert_eq!(
        estimates.len() % QUERIES_PER_RANGE_COV,
        0,
        "estimates are not a covariance batch"
    );
    estimates
        .chunks_exact(QUERIES_PER_RANGE_COV)
        .map(|c| derived::covariance(c[1], c[2], c[3], c[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchQueries, ProgressiveExecutor};
    use batchbb_penalty::Sse;
    use batchbb_query::{partition, LinearStrategy, WaveletStrategy};
    use batchbb_relation::synth;
    use batchbb_storage::MemoryStore;
    use batchbb_wavelet::Wavelet;

    #[test]
    fn exact_stats_match_direct_computation() {
        let dataset = synth::salary(4_000, 9);
        let dfd = dataset.to_frequency_distribution();
        let domain = dfd.schema().domain();
        let ranges = partition::grid_partition(&domain, &[2, 2]);
        let queries = stats_queries(&ranges, 1);
        assert_eq!(queries.len(), 4 * QUERIES_PER_RANGE);

        let strategy = WaveletStrategy::new(Wavelet::Db6);
        let store = MemoryStore::from_entries(strategy.transform_data(dfd.tensor()));
        let batch = BatchQueries::rewrite(&strategy, queries, &domain).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        exec.run_to_end();
        let stats = decode_stats(exec.estimates());
        assert_eq!(stats.len(), 4);

        for (r, s) in ranges.iter().zip(&stats) {
            let vals: Vec<f64> = dataset
                .tuples()
                .iter()
                .map(|t| dataset.schema().bin_tuple(t).unwrap())
                .filter(|c| r.contains(c))
                .map(|c| c[1] as f64)
                .collect();
            if vals.is_empty() {
                assert!(s.count.abs() < 1e-6);
                continue;
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            assert!((s.count - vals.len() as f64).abs() < 1e-6);
            assert!((s.mean.unwrap() - mean).abs() < 1e-6 * mean.max(1.0));
            assert!((s.variance.unwrap() - var).abs() < 1e-5 * var.max(1.0));
        }
    }

    #[test]
    fn covariances_match_direct() {
        let dataset = synth::salary(3_000, 4);
        let dfd = dataset.to_frequency_distribution();
        let domain = dfd.schema().domain();
        let ranges = vec![batchbb_query::HyperRect::full(&domain)];
        let queries = covariance_queries(&ranges, 0, 1);
        let strategy = WaveletStrategy::new(Wavelet::Db6);
        let store = MemoryStore::from_entries(strategy.transform_data(dfd.tensor()));
        let batch = BatchQueries::rewrite(&strategy, queries, &domain).unwrap();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        exec.run_to_end();
        let cov = decode_covariances(exec.estimates())[0].unwrap();

        let pts: Vec<(f64, f64)> = dataset
            .tuples()
            .iter()
            .map(|t| {
                let c = dataset.schema().bin_tuple(t).unwrap();
                (c[0] as f64, c[1] as f64)
            })
            .collect();
        let n = pts.len() as f64;
        let (mx, my) = (
            pts.iter().map(|p| p.0).sum::<f64>() / n,
            pts.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let direct = pts.iter().map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / n;
        assert!(
            (cov - direct).abs() < 1e-5 * direct.abs().max(1.0),
            "{cov} vs {direct}"
        );
        assert!(direct > 0.0, "age and salary are positively correlated");
    }

    #[test]
    fn stats_batch_shares_io_heavily() {
        // COUNT/SUM/SUMSQ over the same range share all coefficient *keys*
        // (same range geometry), so the master list is ~1/3 the unshared
        // total.
        let dataset = synth::salary(2_000, 2);
        let dfd = dataset.to_frequency_distribution();
        let domain = dfd.schema().domain();
        let ranges = partition::grid_partition(&domain, &[4, 4]);
        let queries = stats_queries(&ranges, 1);
        let strategy = WaveletStrategy::new(Wavelet::Db6);
        let batch = BatchQueries::rewrite(&strategy, queries, &domain).unwrap();
        let master = crate::MasterList::build(&batch).len();
        assert!(
            master * 2 <= batch.total_coefficients(),
            "master {master} vs unshared {}",
            batch.total_coefficients()
        );
    }

    #[test]
    #[should_panic(expected = "not a stats batch")]
    fn decode_validates_arity() {
        let _ = decode_stats(&[1.0, 2.0]);
    }
}
