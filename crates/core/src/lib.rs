//! **Batch-Biggest-B**: progressive evaluation of batches of range-sum
//! queries with structural error control (Schmidt & Shahabi, PODS 2002).
//!
//! The algorithm (Figure 1 of the paper):
//!
//! 1. *Preprocessing* — transform the data frequency distribution and store
//!    it with constant random-access cost ([`batchbb_storage`]).
//! 2. Rewrite each query in the batch into its sparse coefficient list
//!    ([`BatchQueries::rewrite`], using any [`batchbb_query::LinearStrategy`]).
//! 3. Merge the lists into a **master list** ([`MasterList`]) so each data
//!    coefficient is retrieved once for the whole batch.
//! 4. Compute each coefficient's **importance**
//!    `ι_p(ξ) = p(q̂₀[ξ],…,q̂_{s-1}[ξ])` under the user's penalty function
//!    and build a max-heap.
//! 5. Repeatedly extract the most important coefficient, retrieve its data
//!    value, and advance every query that needs it
//!    ([`ProgressiveExecutor::step`]). When the heap drains the estimates
//!    are exact.
//!
//! Supporting pieces: the [`round_robin`] single-query baseline the paper
//! compares against, the [`data_approx`] compressed-synopsis baseline it
//! argues against (§1.1), the [`bounded`] workspace-limited variant
//! (§2.2's "reduce workspace requirements"), progressive summary
//! statistics in [`stats`] (§3), Theorem 1/2 diagnostics in
//! [`optimality`], and error metrics for the experiment harnesses in
//! [`metrics`].
//!
//! When the store can fail, the fallible path
//! ([`ProgressiveExecutor::try_step`] /
//! [`ProgressiveExecutor::drain_with_faults`]) retries with backoff, defers
//! coefficients whose retrieval keeps failing, and reports the resulting
//! penalty bounds through [`DegradationReport`] — progressive evaluation
//! degrades gracefully instead of aborting.
//!
//! Every engine can carry an [`ExecObserver`] (and the rewrite stage a
//! [`RewriteObserver`]) that records metrics and emits `exec.*` /
//! `rewrite.*` trace events in one uniform schema — see DESIGN.md §8.
//! Observation is read-only: runs with the default no-op sink are
//! bit-for-bit identical to unobserved runs.

//! # Example
//!
//! ```
//! use batchbb_core::{BatchQueries, ProgressiveExecutor};
//! use batchbb_penalty::Sse;
//! use batchbb_query::{partition, LinearStrategy, RangeSum, WaveletStrategy};
//! use batchbb_relation::synth;
//! use batchbb_storage::{CoefficientStore, MemoryStore};
//! use batchbb_wavelet::Wavelet;
//!
//! // data + preprocessed view
//! let dfd = synth::uniform(2, 5, 10_000, 7).to_frequency_distribution();
//! let domain = dfd.schema().domain();
//! let strategy = WaveletStrategy::new(Wavelet::Haar);
//! let store = MemoryStore::from_entries(strategy.transform_data(dfd.tensor()));
//!
//! // a batch partitioning the domain into 16 COUNT queries
//! let queries: Vec<RangeSum> = partition::random_partition(&domain, 16, 3)
//!     .into_iter().map(RangeSum::count).collect();
//! let batch = BatchQueries::rewrite(&strategy, queries, &domain).unwrap();
//!
//! // progressive evaluation with a hard worst-case guarantee at each step
//! let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
//! exec.run(10);
//! let guarantee = exec.worst_case_bound(store.abs_sum());
//! exec.run_to_end();
//! assert!(exec.is_exact());
//! assert_eq!(exec.estimates().iter().sum::<f64>().round(), 10_000.0);
//! assert!(guarantee >= 0.0);
//! ```

#![warn(missing_docs)]

mod batch;
pub mod bounded;
pub mod data_approx;
mod executor;
pub mod layout;
mod master;
pub mod metrics;
mod observe;
pub mod optimality;
pub mod round_robin;
pub mod stats;

pub use batch::BatchQueries;
pub use executor::{DegradationReport, DrainStatus, ProgressiveExecutor, StepInfo, TryStepOutcome};
pub use master::MasterList;
pub use observe::{ExecObserver, RewriteObserver};
