//! A batch of queries rewritten into the transform domain.

use batchbb_query::{LinearStrategy, RangeSum, StrategyError};
use batchbb_tensor::Shape;
use batchbb_wavelet::SparseCoeffs;

/// A query batch after step 2 of Batch-Biggest-B: every query's sparse
/// coefficient list in the strategy's transform domain.
#[derive(Debug, Clone)]
pub struct BatchQueries {
    queries: Vec<RangeSum>,
    coeffs: Vec<SparseCoeffs>,
}

impl BatchQueries {
    /// Rewrites the batch sequentially.
    pub fn rewrite(
        strategy: &dyn LinearStrategy,
        queries: Vec<RangeSum>,
        domain: &Shape,
    ) -> Result<Self, StrategyError> {
        let coeffs = queries
            .iter()
            .map(|q| strategy.query_coefficients(q, domain))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchQueries { queries, coeffs })
    }

    /// Rewrites the batch on `threads` worker threads (crossbeam scoped).
    ///
    /// Query rewriting is embarrassingly parallel — each query's
    /// coefficient list is independent — and dominates preprocessing time
    /// for large batches.
    pub fn rewrite_parallel(
        strategy: &(dyn LinearStrategy + Sync),
        queries: Vec<RangeSum>,
        domain: &Shape,
        threads: usize,
    ) -> Result<Self, StrategyError> {
        assert!(threads >= 1, "need at least one thread");
        if threads == 1 || queries.len() < 2 {
            return BatchQueries::rewrite(strategy, queries, domain);
        }
        let mut slots: Vec<Option<Result<SparseCoeffs, StrategyError>>> =
            (0..queries.len()).map(|_| None).collect();
        let chunk = queries.len().div_ceil(threads);
        crossbeam::scope(|scope| {
            for (qs, outs) in queries.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move |_| {
                    for (q, out) in qs.iter().zip(outs.iter_mut()) {
                        *out = Some(strategy.query_coefficients(q, domain));
                    }
                });
            }
        })
        .expect("rewrite worker panicked");
        let coeffs = slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchQueries { queries, coeffs })
    }

    /// The queries, in batch order.
    pub fn queries(&self) -> &[RangeSum] {
        &self.queries
    }

    /// Per-query sparse coefficient lists, aligned with
    /// [`BatchQueries::queries`].
    pub fn coefficients(&self) -> &[SparseCoeffs] {
        &self.coeffs
    }

    /// Batch size `s`.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total coefficient count over all queries — what the round-robin
    /// single-query baseline must retrieve (no sharing).
    pub fn total_coefficients(&self) -> usize {
        self.coeffs.iter().map(SparseCoeffs::nnz).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_query::{HyperRect, WaveletStrategy};
    use batchbb_wavelet::Wavelet;

    fn batch(n_queries: usize) -> Vec<RangeSum> {
        (0..n_queries)
            .map(|i| RangeSum::count(HyperRect::new(vec![i, 0], vec![i + 4, 7])))
            .collect()
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let domain = Shape::new(vec![16, 16]).unwrap();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let seq = BatchQueries::rewrite(&strategy, batch(8), &domain).unwrap();
        for threads in [1, 2, 3, 8, 16] {
            let par =
                BatchQueries::rewrite_parallel(&strategy, batch(8), &domain, threads).unwrap();
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.coefficients().iter().zip(par.coefficients()) {
                assert!(a.max_abs_diff(b) < 1e-12, "threads={threads}");
            }
        }
    }

    #[test]
    fn error_propagates_from_any_query() {
        let domain = Shape::new(vec![16, 16]).unwrap();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let mut queries = batch(3);
        queries.push(RangeSum::count(HyperRect::new(vec![0, 0], vec![16, 7]))); // out of domain
        assert!(BatchQueries::rewrite(&strategy, queries.clone(), &domain).is_err());
        assert!(BatchQueries::rewrite_parallel(&strategy, queries, &domain, 4).is_err());
    }

    #[test]
    fn total_coefficients_sums_nnz() {
        let domain = Shape::new(vec![16, 16]).unwrap();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let b = BatchQueries::rewrite(&strategy, batch(4), &domain).unwrap();
        let total: usize = b.coefficients().iter().map(|c| c.nnz()).sum();
        assert_eq!(b.total_coefficients(), total);
        assert!(total > 0);
    }
}
