//! A batch of queries rewritten into the transform domain.

use batchbb_obs::SpanTimer;
use batchbb_query::{LinearStrategy, RangeSum, StrategyError};
use batchbb_tensor::Shape;
use batchbb_wavelet::SparseCoeffs;

use crate::observe::RewriteObserver;

/// A query batch after step 2 of Batch-Biggest-B: every query's sparse
/// coefficient list in the strategy's transform domain.
#[derive(Debug, Clone)]
pub struct BatchQueries {
    queries: Vec<RangeSum>,
    coeffs: Vec<SparseCoeffs>,
}

impl BatchQueries {
    /// Rewrites the batch sequentially.
    pub fn rewrite(
        strategy: &dyn LinearStrategy,
        queries: Vec<RangeSum>,
        domain: &Shape,
    ) -> Result<Self, StrategyError> {
        BatchQueries::rewrite_observed(strategy, queries, domain, None)
    }

    /// [`BatchQueries::rewrite`] with an optional [`RewriteObserver`]:
    /// per-query rewrite latency and coefficient counts go to `rewrite.*`
    /// metrics and events. With `None` no clock is ever read.
    pub fn rewrite_observed(
        strategy: &dyn LinearStrategy,
        queries: Vec<RangeSum>,
        domain: &Shape,
        observer: Option<&RewriteObserver>,
    ) -> Result<Self, StrategyError> {
        let batch_timer = observer.map(|_| SpanTimer::start());
        let coeffs = queries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let timer = observer.map(|_| SpanTimer::start());
                let coeffs = strategy.query_coefficients(q, domain)?;
                if let Some(obs) = observer {
                    obs.on_query(qi, coeffs.nnz(), timer.map_or(0, |t| t.elapsed_ns()));
                }
                Ok(coeffs)
            })
            .collect::<Result<Vec<_>, StrategyError>>()?;
        if let Some(obs) = observer {
            let total = coeffs.iter().map(SparseCoeffs::nnz).sum();
            obs.on_batch(
                queries.len(),
                total,
                1,
                batch_timer.map_or(0, |t| t.elapsed_ns()),
            );
        }
        Ok(BatchQueries { queries, coeffs })
    }

    /// Rewrites the batch on `threads` worker threads (crossbeam scoped).
    ///
    /// Query rewriting is embarrassingly parallel — each query's
    /// coefficient list is independent — and dominates preprocessing time
    /// for large batches.
    pub fn rewrite_parallel(
        strategy: &(dyn LinearStrategy + Sync),
        queries: Vec<RangeSum>,
        domain: &Shape,
        threads: usize,
    ) -> Result<Self, StrategyError> {
        BatchQueries::rewrite_parallel_observed(strategy, queries, domain, threads, None)
    }

    /// [`BatchQueries::rewrite_parallel`] with an optional
    /// [`RewriteObserver`]. Workers emit `rewrite.query` events concurrently
    /// (the sink serializes); the `rewrite.batch` summary carries the
    /// wall-clock time of the whole scoped fan-out.
    pub fn rewrite_parallel_observed(
        strategy: &(dyn LinearStrategy + Sync),
        queries: Vec<RangeSum>,
        domain: &Shape,
        threads: usize,
        observer: Option<&RewriteObserver>,
    ) -> Result<Self, StrategyError> {
        assert!(threads >= 1, "need at least one thread");
        if threads == 1 || queries.len() < 2 {
            return BatchQueries::rewrite_observed(strategy, queries, domain, observer);
        }
        let batch_timer = observer.map(|_| SpanTimer::start());
        let mut slots: Vec<Option<Result<SparseCoeffs, StrategyError>>> =
            (0..queries.len()).map(|_| None).collect();
        let chunk = queries.len().div_ceil(threads);
        crossbeam::scope(|scope| {
            for (ci, (qs, outs)) in queries
                .chunks(chunk)
                .zip(slots.chunks_mut(chunk))
                .enumerate()
            {
                scope.spawn(move |_| {
                    for (i, (q, out)) in qs.iter().zip(outs.iter_mut()).enumerate() {
                        let timer = observer.map(|_| SpanTimer::start());
                        let result = strategy.query_coefficients(q, domain);
                        if let (Some(obs), Ok(coeffs)) = (observer, &result) {
                            obs.on_query(
                                ci * chunk + i,
                                coeffs.nnz(),
                                timer.map_or(0, |t| t.elapsed_ns()),
                            );
                        }
                        *out = Some(result);
                    }
                });
            }
        })
        .expect("rewrite worker panicked");
        let coeffs = slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(obs) = observer {
            let total = coeffs.iter().map(SparseCoeffs::nnz).sum();
            obs.on_batch(
                queries.len(),
                total,
                threads,
                batch_timer.map_or(0, |t| t.elapsed_ns()),
            );
        }
        Ok(BatchQueries { queries, coeffs })
    }

    /// The queries, in batch order.
    pub fn queries(&self) -> &[RangeSum] {
        &self.queries
    }

    /// Per-query sparse coefficient lists, aligned with
    /// [`BatchQueries::queries`].
    pub fn coefficients(&self) -> &[SparseCoeffs] {
        &self.coeffs
    }

    /// Batch size `s`.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total coefficient count over all queries — what the round-robin
    /// single-query baseline must retrieve (no sharing).
    pub fn total_coefficients(&self) -> usize {
        self.coeffs.iter().map(SparseCoeffs::nnz).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_query::{HyperRect, WaveletStrategy};
    use batchbb_wavelet::Wavelet;

    fn batch(n_queries: usize) -> Vec<RangeSum> {
        (0..n_queries)
            .map(|i| RangeSum::count(HyperRect::new(vec![i, 0], vec![i + 4, 7])))
            .collect()
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let domain = Shape::new(vec![16, 16]).unwrap();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let seq = BatchQueries::rewrite(&strategy, batch(8), &domain).unwrap();
        for threads in [1, 2, 3, 8, 16] {
            let par =
                BatchQueries::rewrite_parallel(&strategy, batch(8), &domain, threads).unwrap();
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.coefficients().iter().zip(par.coefficients()) {
                assert!(a.max_abs_diff(b) < 1e-12, "threads={threads}");
            }
        }
    }

    #[test]
    fn error_propagates_from_any_query() {
        let domain = Shape::new(vec![16, 16]).unwrap();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let mut queries = batch(3);
        queries.push(RangeSum::count(HyperRect::new(vec![0, 0], vec![16, 7]))); // out of domain
        assert!(BatchQueries::rewrite(&strategy, queries.clone(), &domain).is_err());
        assert!(BatchQueries::rewrite_parallel(&strategy, queries, &domain, 4).is_err());
    }

    #[test]
    fn total_coefficients_sums_nnz() {
        let domain = Shape::new(vec![16, 16]).unwrap();
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let b = BatchQueries::rewrite(&strategy, batch(4), &domain).unwrap();
        let total: usize = b.coefficients().iter().map(|c| c.nnz()).sum();
        assert_eq!(b.total_coefficients(), total);
        assert!(total > 0);
    }
}
