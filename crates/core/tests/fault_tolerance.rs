//! End-to-end acceptance tests for the fallible retrieval path: a
//! progressive evaluation over a fault-injecting store completes, its
//! degradation bounds shrink monotonically as deferrals drain, the fault
//! counters reconcile at every snapshot, and — thanks to the executor's
//! canonical finalization, which re-sums the estimates in sorted key order
//! the moment evaluation turns exact — the final estimates match the
//! fault-free run **bit for bit**, no matter where faults reordered the
//! retrievals.

use batchbb_core::{BatchQueries, DrainStatus, ProgressiveExecutor, TryStepOutcome};
use batchbb_penalty::Sse;
use batchbb_query::{HyperRect, LinearStrategy, RangeSum, WaveletStrategy};
use batchbb_storage::{FaultInjectingStore, FaultPlan, MemoryStore, RetryPolicy};
use batchbb_tensor::{Shape, Tensor};
use batchbb_wavelet::Wavelet;

struct Fixture {
    data: Tensor,
    store: MemoryStore,
    batch: BatchQueries,
    n_total: usize,
    k_abs_sum: f64,
}

fn fixture() -> Fixture {
    let shape = Shape::new(vec![16, 16]).unwrap();
    // Integer data so the Haar coefficients are dyadic rationals.
    let data = Tensor::from_fn(shape.clone(), |ix| ((3 * ix[0] + 5 * ix[1]) % 7) as f64);
    let strategy = WaveletStrategy::new(Wavelet::Haar);
    let store = MemoryStore::from_entries(strategy.transform_data(&data));
    // Unaligned ranges produce non-trivial coefficient lists.
    let queries = vec![
        RangeSum::count(HyperRect::new(vec![1, 2], vec![10, 13])),
        RangeSum::count(HyperRect::new(vec![0, 5], vec![15, 9])),
        RangeSum::count(HyperRect::new(vec![6, 0], vec![11, 15])),
        RangeSum::count(HyperRect::new(vec![3, 3], vec![12, 12])),
    ];
    let batch = BatchQueries::rewrite(&strategy, queries, &shape).unwrap();
    let n_total = 16 * 16;
    let k_abs_sum = store.abs_sum();
    Fixture {
        data,
        store,
        batch,
        n_total,
        k_abs_sum,
    }
}

/// Fault-free reference estimates, run to exactness.
fn reference(fx: &Fixture) -> Vec<f64> {
    let mut exec = ProgressiveExecutor::new(&fx.batch, &Sse, &fx.store);
    exec.run_to_end();
    assert!(exec.is_exact());
    exec.estimates().to_vec()
}

/// Asserts the two reconciliation invariants at one snapshot.
fn assert_reconciled(exec: &ProgressiveExecutor<'_>) {
    let fs = exec.fault_stats();
    assert!(
        fs.attempts_reconcile(),
        "attempts {} != successes {} + transient {} + permanent {}",
        fs.attempts,
        fs.successes,
        fs.transient_failures,
        fs.permanent_failures
    );
    assert!(
        fs.deferrals_reconcile(exec.deferred_count() as u64),
        "deferrals {} != recoveries {} + still-deferred {}",
        fs.deferrals,
        fs.recoveries,
        exec.deferred_count()
    );
}

#[test]
fn transient_faults_converge_bit_for_bit() {
    let fx = fixture();
    let truth = reference(&fx);

    // ≥10% transient rate (acceptance floor); the seed is arbitrary but
    // fixed, so the whole fault history is reproducible.
    let flaky = FaultInjectingStore::new(
        &fx.store,
        FaultPlan::new(0x0b5e_55ed).with_transient_rate(0.25),
    );
    let mut exec = ProgressiveExecutor::new(&fx.batch, &Sse, &flaky);
    let policy = RetryPolicy::default();

    let mut prev_expected = f64::INFINITY;
    let mut prev_worst = f64::INFINITY;
    let mut deferred_seen = false;
    let mut steps = 0usize;
    loop {
        steps += 1;
        assert!(steps < 100_000, "fallible evaluation must terminate");
        match exec.try_step(&policy) {
            TryStepOutcome::Exhausted => break,
            TryStepOutcome::Deferred { .. } => deferred_seen = true,
            TryStepOutcome::Retrieved(_) | TryStepOutcome::Recovered(_) => {}
            TryStepOutcome::BudgetExhausted => {
                panic!("no budget configured, must never exhaust")
            }
            TryStepOutcome::Pending => {
                panic!("synchronous store never parks a fetch")
            }
        }
        // Invariants hold at EVERY snapshot, not just at the end.
        assert_reconciled(&exec);
        let report = exec.degradation_report(fx.n_total, fx.k_abs_sum);
        assert!(
            report.expected_penalty <= prev_expected + 1e-12,
            "expected penalty must not grow: {} after {}",
            report.expected_penalty,
            prev_expected
        );
        assert!(
            report.worst_case_bound <= prev_worst + 1e-12,
            "worst-case bound must not grow: {} after {}",
            report.worst_case_bound,
            prev_worst
        );
        prev_expected = report.expected_penalty;
        prev_worst = report.worst_case_bound;
    }

    assert!(exec.is_exact());
    let fs = exec.fault_stats();
    assert!(fs.transient_failures > 0, "25% rate must inject something");
    assert_reconciled(&exec);
    let report = exec.degradation_report(fx.n_total, fx.k_abs_sum);
    assert!(report.is_exact);
    assert_eq!(report.expected_penalty, 0.0);
    assert_eq!(report.worst_case_bound, 0.0);

    // Canonical finalization: exact equality with the fault-free run, not
    // tolerance.
    assert_eq!(exec.estimates(), truth.as_slice());
    // Sanity: the estimates are the true range sums up to reconstruction
    // rounding (the orthonormal Haar filters carry 1/√2 factors).
    for (q, est) in fx.batch.queries().iter().zip(exec.estimates()) {
        assert!((est - q.eval_direct(&fx.data)).abs() < 1e-6);
    }
    let _ = deferred_seen; // informative only: rate 0.25 with 3 attempts may or may not defer
}

#[test]
fn permanent_faults_degrade_then_heal_to_exact() {
    let fx = fixture();
    let truth = reference(&fx);

    // Break the three most important coefficients outright.
    let ranked = {
        let mut exec = ProgressiveExecutor::new(&fx.batch, &Sse, &fx.store);
        let mut keys = Vec::new();
        for _ in 0..3 {
            keys.push(exec.step().unwrap().key);
        }
        keys
    };
    let flaky = FaultInjectingStore::new(
        &fx.store,
        FaultPlan::new(9).with_permanent_keys(ranked.iter().copied()),
    );
    let mut exec = ProgressiveExecutor::new(&fx.batch, &Sse, &flaky);
    let policy = RetryPolicy::default();

    assert_eq!(exec.drain_with_faults(&policy), DrainStatus::Degraded);
    assert_eq!(exec.deferred_count(), 3);
    assert!(!exec.is_exact());
    assert_reconciled(&exec);
    let degraded = exec.degradation_report(fx.n_total, fx.k_abs_sum);
    assert!(!degraded.is_exact);
    assert_eq!(degraded.deferred.len(), 3);
    assert!(degraded.deferred_importance > 0.0);
    assert!(degraded.expected_penalty > 0.0);
    assert!(degraded.worst_case_bound > 0.0);
    let deferred_keys: Vec<_> = degraded.deferred.iter().map(|&(k, _)| k).collect();
    for k in &ranked {
        assert!(deferred_keys.contains(k), "{k} must be reported deferred");
    }

    // Heal the store and drain: each recovery must tighten both bounds.
    flaky.heal();
    let mut prev_expected = degraded.expected_penalty;
    let mut prev_worst = degraded.worst_case_bound;
    loop {
        match exec.try_step(&policy) {
            TryStepOutcome::Exhausted => break,
            TryStepOutcome::Recovered(_) => {}
            other => panic!("healed drain saw {other:?}"),
        }
        assert_reconciled(&exec);
        let report = exec.degradation_report(fx.n_total, fx.k_abs_sum);
        assert!(report.expected_penalty <= prev_expected + 1e-12);
        assert!(report.worst_case_bound <= prev_worst + 1e-12);
        prev_expected = report.expected_penalty;
        prev_worst = report.worst_case_bound;
    }

    assert!(exec.is_exact());
    assert_eq!(exec.fault_stats().recoveries, 3);
    assert_reconciled(&exec);
    // Bit-for-bit against the fault-free run, despite the three most
    // important coefficients being applied last instead of first.
    assert_eq!(exec.estimates(), truth.as_slice());
}

#[test]
fn attempt_budget_is_a_hard_ceiling() {
    let fx = fixture();
    let flaky = FaultInjectingStore::new(&fx.store, FaultPlan::new(11).with_transient_rate(0.4));
    let mut exec = ProgressiveExecutor::new(&fx.batch, &Sse, &flaky);
    let policy = RetryPolicy {
        total_attempt_budget: Some(8),
        ..RetryPolicy::default()
    };
    assert_eq!(
        exec.drain_with_faults(&policy),
        DrainStatus::BudgetExhausted
    );
    assert!(exec.fault_stats().attempts <= 8);
    assert_reconciled(&exec);
    // The report stays coherent mid-flight: estimates valid, bounds finite.
    let report = exec.degradation_report(fx.n_total, fx.k_abs_sum);
    assert!(!report.is_exact);
    assert!(report.expected_penalty.is_finite() && report.worst_case_bound.is_finite());

    // Lifting the budget finishes the job exactly.
    assert_eq!(
        exec.drain_with_faults(&RetryPolicy::default()),
        DrainStatus::Exact
    );
    assert_eq!(exec.estimates(), reference(&fx).as_slice());
}

#[test]
fn strategy_is_send_sync_probe() {
    // Compile-time probe: the fallible wrapper must stay shareable across
    // threads like every other store (the executor holds `&dyn`).
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FaultInjectingStore<MemoryStore>>();
    let _ = WaveletStrategy::new(Wavelet::Haar).name();
}
