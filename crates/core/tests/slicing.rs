//! Slice-boundary regression pin: the prefetch buffer must carry across
//! budgeted slices.  A budget that expires mid-window hands control back
//! with retrieved-but-unapplied coefficients sitting in the buffer; if
//! resuming re-fetched them (or flushed the buffer), a sliced run would
//! issue more physical round-trips than an unsliced one.  The serve pool
//! slices every batch, so that regression would silently tax every
//! round-trip the prefetch window is supposed to save.

use std::sync::atomic::{AtomicU64, Ordering};

use batchbb_core::{BatchQueries, DrainStatus, ProgressiveExecutor};
use batchbb_penalty::Sse;
use batchbb_query::{partition, LinearStrategy, RangeSum, WaveletStrategy};
use batchbb_relation::synth;
use batchbb_storage::{CoefficientStore, IoStats, MemoryStore, RetryPolicy, StorageError};
use batchbb_tensor::CoeffKey;
use batchbb_wavelet::Wavelet;

/// Counts physical round-trips (calls, not keys), like the bench-side
/// `FetchCounter` — inlined here because `batchbb-core` cannot depend on
/// `batchbb-bench`.
struct CallCounter<S> {
    inner: S,
    singleton: AtomicU64,
    batch: AtomicU64,
}

impl<S> CallCounter<S> {
    fn new(inner: S) -> Self {
        CallCounter {
            inner,
            singleton: AtomicU64::new(0),
            batch: AtomicU64::new(0),
        }
    }

    fn calls(&self) -> (u64, u64) {
        (
            self.singleton.load(Ordering::Relaxed),
            self.batch.load(Ordering::Relaxed),
        )
    }
}

impl<S: CoefficientStore> CoefficientStore for CallCounter<S> {
    fn get(&self, key: &CoeffKey) -> Option<f64> {
        self.singleton.fetch_add(1, Ordering::Relaxed);
        self.inner.get(key)
    }

    fn try_get(&self, key: &CoeffKey) -> Result<Option<f64>, StorageError> {
        self.singleton.fetch_add(1, Ordering::Relaxed);
        self.inner.try_get(key)
    }

    fn try_get_many(&self, keys: &[CoeffKey]) -> Result<Vec<Option<f64>>, StorageError> {
        self.batch.fetch_add(1, Ordering::Relaxed);
        self.inner.try_get_many(keys)
    }

    fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

fn workload() -> (MemoryStore, BatchQueries) {
    let dataset = synth::clustered(2, 6, 8_000, 3, 5);
    let dfd = dataset.to_frequency_distribution();
    let domain = dfd.schema().domain();
    let strategy = WaveletStrategy::new(Wavelet::Haar);
    let store = MemoryStore::from_entries(strategy.transform_data(dfd.tensor()));
    let queries: Vec<RangeSum> = partition::random_partition(&domain, 24, 9)
        .into_iter()
        .map(RangeSum::count)
        .collect();
    let batch = BatchQueries::rewrite(&strategy, queries, &domain).unwrap();
    (store, batch)
}

#[test]
fn prefetch_buffer_carries_across_slice_boundaries() {
    let (store, batch) = workload();
    let policy = RetryPolicy::default();
    let window = 16;

    let unsliced_counter = CallCounter::new(&store);
    let mut unsliced =
        ProgressiveExecutor::new(&batch, &Sse, &unsliced_counter).with_prefetch_window(window);
    assert_eq!(unsliced.drain_with_faults(&policy), DrainStatus::Exact);

    // Budget 7 never divides the 16-key window, so every slice boundary
    // lands mid-window with retrieved coefficients still buffered.
    let sliced_counter = CallCounter::new(&store);
    let mut sliced =
        ProgressiveExecutor::new(&batch, &Sse, &sliced_counter).with_prefetch_window(window);
    let mut slices = 0u64;
    let status = loop {
        match sliced.drain_with_faults_budgeted(&policy, 7) {
            Some(status) => break status,
            None => slices += 1,
        }
    };
    assert_eq!(status, DrainStatus::Exact);
    assert!(
        slices > 2,
        "the workload must actually cross slice boundaries, got {slices} slices"
    );

    assert_eq!(
        sliced_counter.calls(),
        unsliced_counter.calls(),
        "slicing must not change the physical round-trip count: the \
         prefetch buffer carries across budget boundaries \
         (singleton, batch) sliced vs unsliced"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(sliced.estimates()),
        bits(unsliced.estimates()),
        "sliced and unsliced finals must be bit-identical"
    );
}
