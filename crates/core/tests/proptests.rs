//! Property-based tests of the Batch-Biggest-B invariants: exactness at
//! completion, non-increasing importance, I/O sharing never losing to the
//! round-robin baseline, and Theorem 1/2 optimality against random
//! alternative retained sets.

use std::collections::HashSet;

use proptest::prelude::*;

use batchbb_core::{
    bounded::evaluate_bounded, optimality, round_robin::RoundRobin, BatchQueries, DrainStatus,
    MasterList, ProgressiveExecutor,
};
use batchbb_penalty::{DiagonalQuadratic, Penalty, Sse};
use batchbb_query::{partition, LinearStrategy, RangeSum, WaveletStrategy};
use batchbb_storage::{AsyncFetchStore, FaultInjectingStore, FaultPlan, MemoryStore, RetryPolicy};
use batchbb_tensor::{CoeffKey, Shape, Tensor};
use batchbb_wavelet::Wavelet;

/// A random instance: data tensor, store, and a partition-count batch.
fn arb_instance() -> impl Strategy<Value = (Tensor, Vec<RangeSum>, Shape)> {
    (2u32..5, 2u32..5, 2usize..12, 0u64..1000).prop_flat_map(|(bx, by, cells, seed)| {
        let shape = Shape::new(vec![1usize << bx, 1usize << by]).unwrap();
        let len = shape.len();
        let cells = cells.min(len);
        prop::collection::vec(0.0f64..9.0, len).prop_map(move |vals| {
            let shape = Shape::new(vec![1usize << bx, 1usize << by]).unwrap();
            let data = Tensor::from_vec(shape.clone(), vals).unwrap();
            let queries = partition::random_partition(&shape, cells, seed)
                .into_iter()
                .map(RangeSum::count)
                .collect();
            (data, queries, shape)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Progressive estimates equal direct evaluation once the heap drains,
    /// for both Haar and Db4.
    #[test]
    fn exact_at_completion((data, queries, shape) in arb_instance()) {
        for w in [Wavelet::Haar, Wavelet::Db4] {
            let strategy = WaveletStrategy::new(w);
            let store = MemoryStore::from_entries(strategy.transform_data(&data));
            let batch = BatchQueries::rewrite(&strategy, queries.clone(), &shape).unwrap();
            let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
            exec.run_to_end();
            for (q, est) in batch.queries().iter().zip(exec.estimates()) {
                let truth = q.eval_direct(&data);
                prop_assert!((est - truth).abs() < 1e-6 * truth.abs().max(1.0),
                    "{w}: {est} vs {truth}");
            }
        }
    }

    /// The executor's importance stream is non-increasing, and the number
    /// of retrievals equals the master-list size — never more than the
    /// round-robin baseline.
    #[test]
    fn sharing_never_loses((data, queries, shape) in arb_instance()) {
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let batch = BatchQueries::rewrite(&strategy, queries, &shape).unwrap();
        let master = MasterList::build(&batch).len();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        let mut last = f64::INFINITY;
        let mut steps = 0;
        while let Some(info) = exec.step() {
            prop_assert!(info.importance <= last + 1e-12);
            last = info.importance;
            steps += 1;
        }
        prop_assert_eq!(steps, master);
        let mut rr = RoundRobin::new(&batch, &store);
        let rr_cost = rr.run_to_end();
        prop_assert!(master as u64 <= rr_cost);
        // and both are exact
        for (a, b) in exec.estimates().iter().zip(rr.estimates()) {
            prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
        }
    }

    /// Theorem 1 bound holds on arbitrary data at every step: observed
    /// penalty ≤ K^α · ι(next) with K = Σ|Δ̂|.
    #[test]
    fn theorem1_bound_pointwise((data, queries, shape) in arb_instance()) {
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let k = store.abs_sum();
        let batch = BatchQueries::rewrite(&strategy, queries, &shape).unwrap();
        let exact: Vec<f64> = batch.queries().iter().map(|q| q.eval_direct(&data)).collect();
        let mut exec = ProgressiveExecutor::new(&batch, &Sse, &store);
        loop {
            let bound = exec.worst_case_bound(k);
            let sse: f64 = exec.estimates().iter().zip(&exact)
                .map(|(e, x)| (e - x) * (e - x)).sum();
            prop_assert!(sse <= bound * (1.0 + 1e-9) + 1e-9,
                "SSE {sse} > bound {bound}");
            if exec.step().is_none() {
                break;
            }
        }
    }

    /// Theorem 1/2: the biggest-B retained set is never beaten by a random
    /// B-subset on the worst-case or expected penalty, under SSE and a
    /// random diagonal quadratic.
    #[test]
    fn biggest_b_is_best(
        (data, queries, shape) in arb_instance(),
        weights in prop::collection::vec(0.0f64..5.0, 12),
        frac in 0.1f64..0.9,
        subset_seed in 0u64..100,
    ) {
        let _ = data;
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let batch = BatchQueries::rewrite(&strategy, queries, &shape).unwrap();
        let s = batch.len();
        let penalties: Vec<Box<dyn Penalty>> = vec![
            Box::new(Sse),
            Box::new(DiagonalQuadratic::new(weights[..s.min(12)].iter().copied()
                .chain(std::iter::repeat(1.0)).take(s).collect())),
        ];
        for p in &penalties {
            let ranked = optimality::importance_ranking(&batch, p.as_ref());
            let b = ((ranked.len() as f64) * frac) as usize;
            let best = optimality::biggest_b_set(&batch, p.as_ref(), b);
            let best_wc = optimality::worst_case_penalty(&batch, p.as_ref(), &best, 1.0);
            let best_e = optimality::expected_penalty(&batch, p.as_ref(), &best, shape.len());
            // one deterministic "random" alternative subset
            let mut alt: Vec<CoeffKey> = ranked.iter().map(|(k, _)| *k).collect();
            let n = alt.len();
            for i in 0..b {
                let j = i + ((subset_seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % (n - i);
                alt.swap(i, j);
            }
            let alt: HashSet<CoeffKey> = alt[..b].iter().copied().collect();
            prop_assert!(best_wc <= optimality::worst_case_penalty(&batch, p.as_ref(), &alt, 1.0) + 1e-12);
            prop_assert!(best_e <= optimality::expected_penalty(&batch, p.as_ref(), &alt, shape.len()) + 1e-12);
        }
    }

    /// Final estimates and retrieved entries are bit-identical across
    /// prefetch windows, on arbitrary instances and under injected
    /// transient faults: the window changes how values cross the store
    /// boundary, never what the executor computes.
    #[test]
    fn prefetch_windows_agree_bit_for_bit(
        (data, queries, shape) in arb_instance(),
        window in 2usize..64,
        rate in 0.0f64..0.4,
        seed in 0u64..1000,
    ) {
        let _ = data;
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let batch = BatchQueries::rewrite(&strategy, queries, &shape).unwrap();
        let policy = RetryPolicy::default();
        let run = |w: usize| {
            let faulty = FaultInjectingStore::new(
                &store,
                FaultPlan::new(seed).with_transient_rate(rate),
            );
            let mut exec = ProgressiveExecutor::new(&batch, &Sse, &faulty)
                .with_prefetch_window(w);
            if exec.drain_with_faults(&policy) != DrainStatus::Exact {
                // Unlucky transient streak exhausted the retry budget:
                // heal and finish — canonical finalization still applies.
                faulty.heal();
                assert_eq!(exec.drain_with_faults(&policy), DrainStatus::Exact);
            }
            (exec.estimates().to_vec(), exec.retrieved_entries())
        };
        let (base_est, base_entries) = run(1);
        for w in [window, 16] {
            let (est, entries) = run(w);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&est), bits(&base_est),
                "estimates diverge at window {}", w);
            prop_assert_eq!(&entries, &base_entries,
                "retrieved entries diverge at window {}", w);
        }
    }

    /// ✦ The asynchronous completion engine is a transparent storage-engine
    /// swap for the executor: across pool shapes (I/O thread counts),
    /// prefetch windows, and seeded transient faults, the parked-completion
    /// path produces bit-identical final estimates, the same
    /// retrieved-entry witness, and the *exact same* fault ledger as the
    /// blocking `try_get_many` path (fault draws are per `(key, attempt)`,
    /// so thread interleaving cannot change them).
    #[test]
    fn async_completion_agrees_with_sync_bit_for_bit(
        (data, queries, shape) in arb_instance(),
        window in 2usize..64,
        io_threads in 1usize..5,
        rate in 0.0f64..0.4,
        seed in 0u64..1000,
    ) {
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let entries = strategy.transform_data(&data);
        let batch = BatchQueries::rewrite(&strategy, queries, &shape).unwrap();
        let policy = RetryPolicy::default();
        let plan = || FaultPlan::new(seed).with_transient_rate(rate);

        // Blocking reference: every prefetch window crosses the store
        // boundary through `try_get_many` and stalls the caller.
        let sync_store =
            FaultInjectingStore::new(MemoryStore::from_entries(entries.clone()), plan());
        let mut sync_exec = ProgressiveExecutor::new(&batch, &Sse, &sync_store)
            .with_prefetch_window(window);
        if sync_exec.drain_with_faults(&policy) != DrainStatus::Exact {
            // Unlucky transient streak exhausted the retry budget: heal
            // and finish — canonical finalization still applies.
            sync_store.heal();
            assert_eq!(sync_exec.drain_with_faults(&policy), DrainStatus::Exact);
        }

        // Completion path: the same windows submitted to the async engine;
        // the executor parks on the Completion and the drain resolves it.
        let engine = AsyncFetchStore::new(
            FaultInjectingStore::new(MemoryStore::from_entries(entries), plan()),
            io_threads,
        );
        let mut async_exec = ProgressiveExecutor::new(&batch, &Sse, &engine)
            .with_prefetch_window(window);
        if async_exec.drain_with_faults(&policy) != DrainStatus::Exact {
            engine.inner().heal();
            assert_eq!(async_exec.drain_with_faults(&policy), DrainStatus::Exact);
        }

        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(async_exec.estimates()), bits(sync_exec.estimates()),
            "completion path diverged from blocking finals");
        prop_assert_eq!(async_exec.retrieved_entries(), sync_exec.retrieved_entries(),
            "completion path retrieved a different witness");
        let (sync_stats, async_stats) = (sync_exec.fault_stats(), async_exec.fault_stats());
        prop_assert!(sync_stats.attempts_reconcile(), "sync ledger: {:?}", sync_stats);
        prop_assert!(async_stats.attempts_reconcile(), "async ledger: {:?}", async_stats);
        prop_assert_eq!(async_stats, sync_stats,
            "the storage engine must not change the fault ledger");
    }

    /// Bounded-workspace evaluation with an unlimited budget is exact.
    #[test]
    fn bounded_exact_with_full_budget((data, queries, shape) in arb_instance()) {
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let r = evaluate_bounded(&strategy, &queries, &shape, &store, &Sse, usize::MAX / 8).unwrap();
        for (q, est) in queries.iter().zip(&r.estimates) {
            let truth = q.eval_direct(&data);
            prop_assert!((est - truth).abs() < 1e-6 * truth.abs().max(1.0));
        }
    }
}
