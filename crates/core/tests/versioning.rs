//! Version-advance repair contract of the executor (DESIGN.md §13).
//!
//! An executor pinned to one store version may opt in to a newer one:
//! the caller advances its view first, then calls
//! `ProgressiveExecutor::advance_version` with the exact concatenated
//! delta between the versions. These tests pin the headline invariant —
//! an executor repaired through `k` version deltas finalizes
//! bit-identically to a fresh executor started on the final version —
//! plus the degenerate cases: an empty delta, a delta touching every
//! pinned key, and a delta racing a pending `AsyncFetchStore` completion.

use proptest::prelude::*;

use batchbb_core::{BatchQueries, DrainStatus, ProgressiveExecutor};
use batchbb_penalty::Sse;
use batchbb_query::{partition, LinearStrategy, RangeSum, WaveletStrategy};
use batchbb_relation::{cube, Attribute, FrequencyDistribution, Schema};
use batchbb_storage::{
    AsyncFetchStore, CoefficientStore, Completion, IoStats, RetryPolicy, StorageError,
    VersionedStore,
};
use batchbb_tensor::{CoeffKey, Shape};
use batchbb_wavelet::Wavelet;

/// A deterministic dataset on a `2^bx × 2^by` domain, one batch of count
/// queries, and the versioned wavelet store holding version 0.
fn instance(
    bx: u32,
    by: u32,
    seed: u64,
    wavelet: Wavelet,
) -> (VersionedStore, BatchQueries, Shape, WaveletStrategy) {
    let schema = Schema::new(vec![
        Attribute::new("x", 0.0, (1 << bx) as f64, bx),
        Attribute::new("y", 0.0, (1 << by) as f64, by),
    ])
    .unwrap();
    let mut dfd = FrequencyDistribution::new(schema);
    for i in 0..(1usize << bx) {
        for j in 0..(1usize << by) {
            let w = ((i as u64 * 7 + j as u64 * 3 + seed) % 5) as f64;
            if w != 0.0 {
                dfd.insert_binned(&[i, j], w);
            }
        }
    }
    let strategy = WaveletStrategy::new(wavelet);
    let store = VersionedStore::from_entries(strategy.transform_data(dfd.tensor()));
    let shape = dfd.schema().domain();
    let cells = 2 + (seed as usize % 3);
    let queries: Vec<RangeSum> = partition::random_partition(&shape, cells, seed)
        .into_iter()
        .map(RangeSum::count)
        .collect();
    let batch = BatchQueries::rewrite(&strategy, queries, &shape).unwrap();
    (store, batch, shape, strategy)
}

/// Runs a fresh executor to exactness against the store's *current*
/// version and returns its finals.
fn restart_finals(
    store: &VersionedStore,
    batch: &BatchQueries,
    window: usize,
) -> (Vec<f64>, Vec<(CoeffKey, f64)>) {
    let view = store.pin();
    let mut exec = ProgressiveExecutor::new(batch, &Sse, &view).with_prefetch_window(window);
    exec.run_to_end();
    (exec.estimates().to_vec(), exec.retrieved_entries())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn advance_version_agrees_with_restart(
        bx in 2u32..5,
        by in 2u32..5,
        seed in 0u64..500,
        k_versions in 1usize..4,
        steps_between in 0usize..24,
        window in 1usize..4,
    ) {
        let wavelet = if seed % 2 == 0 { Wavelet::Haar } else { Wavelet::Db4 };
        let (store, batch, shape, strategy) = instance(bx, by, seed, wavelet);
        let view = store.pin();
        let mut exec =
            ProgressiveExecutor::new(&batch, &Sse, &view).with_prefetch_window(window);
        for v in 0..k_versions {
            exec.run(steps_between);
            let x = (seed as usize + 3 * v) % (1 << bx);
            let y = (seed as usize * 5 + v) % (1 << by);
            let entries =
                cube::point_entries(&shape, &[x, y], 1.0 + v as f64, strategy.wavelet);
            store.publish(&entries);
            // View first, repair second — the documented advance order.
            let (_, delta) = view.advance_to_current();
            exec.advance_version(&delta);
        }
        exec.run_to_end();
        let (estimates, retrieved) = restart_finals(&store, &batch, window);
        prop_assert_eq!(exec.estimates(), estimates.as_slice());
        prop_assert_eq!(exec.retrieved_entries(), retrieved);
    }
}

/// Degenerate case: publishing an empty delta still creates a version;
/// advancing through it must change nothing at all.
#[test]
fn advance_through_an_empty_delta_is_identity() {
    let (store, batch, _, _) = instance(4, 4, 7, Wavelet::Db4);
    let view = store.pin();
    let mut exec = ProgressiveExecutor::new(&batch, &Sse, &view);
    exec.run(10);
    let before_estimates = exec.estimates().to_vec();
    let before_bound = exec.worst_case_bound(store.abs_sum());
    let v0 = view.version();
    store.publish(&[]);
    let (v1, delta) = view.advance_to_current();
    assert_eq!(v1.as_u64(), v0.as_u64() + 1);
    assert!(delta.is_empty());
    exec.advance_version(&delta);
    assert_eq!(exec.estimates(), before_estimates.as_slice());
    assert_eq!(exec.worst_case_bound(store.abs_sum()), before_bound);
    exec.run_to_end();
    let (estimates, retrieved) = restart_finals(&store, &batch, 1);
    assert_eq!(exec.estimates(), estimates.as_slice());
    assert_eq!(exec.retrieved_entries(), retrieved);
}

/// Degenerate case: the delta touches *every* key the executor has
/// pinned — all retrieved values repaired, every remaining read changed.
#[test]
fn advance_through_a_delta_touching_every_pinned_key() {
    let (store, batch, _, _) = instance(4, 4, 11, Wavelet::Haar);
    // Probe run: every master-list key with its version-0 value.
    let all_keys = {
        let view = store.pin();
        let mut probe = ProgressiveExecutor::new(&batch, &Sse, &view);
        probe.run_to_end();
        probe.retrieved_entries()
    };
    assert!(!all_keys.is_empty());
    let view = store.pin();
    let mut exec = ProgressiveExecutor::new(&batch, &Sse, &view);
    exec.run(all_keys.len() / 2);
    let delta: Vec<(CoeffKey, f64)> = all_keys
        .iter()
        .enumerate()
        .map(|(i, (key, _))| (*key, 0.25 + i as f64 * 0.5))
        .collect();
    store.publish(&delta);
    let (_, advance) = view.advance_to_current();
    assert_eq!(advance.len(), delta.len());
    exec.advance_version(&advance);
    exec.run_to_end();
    let (estimates, retrieved) = restart_finals(&store, &batch, 1);
    assert_eq!(exec.estimates(), estimates.as_slice());
    assert_eq!(exec.retrieved_entries(), retrieved);
}

/// A store whose reads block while the gate is closed — pins an
/// `AsyncFetchStore` completion in flight deterministically.
struct GatedView {
    inner: batchbb_storage::VersionView,
    gate: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl GatedView {
    fn new(inner: batchbb_storage::VersionView) -> Self {
        GatedView {
            inner,
            gate: std::sync::Mutex::new(true),
            cv: std::sync::Condvar::new(),
        }
    }

    fn set_gate(&self, open: bool) {
        *self.gate.lock().unwrap() = open;
        self.cv.notify_all();
    }

    fn wait_open(&self) {
        let guard = self.gate.lock().unwrap();
        drop(self.cv.wait_while(guard, |open| !*open).unwrap());
    }

    fn view(&self) -> &batchbb_storage::VersionView {
        &self.inner
    }
}

impl CoefficientStore for GatedView {
    fn get(&self, key: &CoeffKey) -> Option<f64> {
        self.wait_open();
        self.inner.get(key)
    }

    fn try_get(&self, key: &CoeffKey) -> Result<Option<f64>, StorageError> {
        self.wait_open();
        self.inner.try_get(key)
    }

    fn try_get_many(&self, keys: &[CoeffKey]) -> Result<Vec<Option<f64>>, StorageError> {
        self.wait_open();
        self.inner.try_get_many(keys)
    }

    fn submit(&self, keys: &[CoeffKey]) -> Completion {
        self.wait_open();
        self.inner.submit(keys)
    }

    fn version_tag(&self) -> u64 {
        self.inner.version_tag()
    }

    fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

/// Degenerate case: a version delta lands while an asynchronous prefetch
/// is still in flight. The advance abandons the pending fetch (its keys
/// intersect the delta), so the executor re-fetches them from the *new*
/// version and still finalizes bit-identically to a restart.
#[test]
fn advance_racing_a_pending_async_completion() {
    let (store, batch, _, _) = instance(4, 4, 3, Wavelet::Haar);
    let gated = GatedView::new(store.pin());
    gated.set_gate(false);
    let asynchronous = AsyncFetchStore::new(gated, 1);
    let mut exec = ProgressiveExecutor::new(&batch, &Sse, &asynchronous).with_prefetch_window(2);
    // With the gate closed, the first budgeted drain submits its prefetch
    // and parks on it: the completion is pinned in flight.
    let status = exec.drain_with_faults_budgeted(&RetryPolicy::default(), 4);
    assert_eq!(status, None);
    assert!(exec.fetch_pending() && !exec.fetch_ready());
    // Publish a delta touching every master-list key, so the pending
    // fetch provably intersects it; advance view-first as always.
    let all_keys = {
        let view = store.pin();
        let mut probe = ProgressiveExecutor::new(&batch, &Sse, &view);
        probe.run_to_end();
        probe.retrieved_entries()
    };
    let delta: Vec<(CoeffKey, f64)> = all_keys
        .iter()
        .map(|(key, value)| (*key, 1.0 + value.abs()))
        .collect();
    store.publish(&delta);
    let (_, advance) = asynchronous.inner().view().advance_to_current();
    exec.advance_version(&advance);
    assert!(
        !exec.fetch_pending(),
        "the intersecting pending fetch must be abandoned"
    );
    // Release the stale read and finish: every retrieval now comes from
    // the new version.
    asynchronous.inner().set_gate(true);
    let status = exec.drain_with_faults(&RetryPolicy::default());
    assert_eq!(status, DrainStatus::Exact);
    let (estimates, retrieved) = restart_finals(&store, &batch, 1);
    assert_eq!(exec.estimates(), estimates.as_slice());
    assert_eq!(exec.retrieved_entries(), retrieved);
    asynchronous.quiesce();
}
