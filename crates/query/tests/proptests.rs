//! Property-based tests for the query layer: every linear strategy must
//! evaluate every supported query exactly, on arbitrary data.

use proptest::prelude::*;

use batchbb_query::{
    partition, HyperRect, IdentityStrategy, LinearStrategy, Monomial, PrefixSumStrategy, RangeSum,
    WaveletStrategy,
};
use batchbb_tensor::{CoeffKey, Shape, Tensor};
use batchbb_wavelet::Wavelet;
use std::collections::HashMap;

fn evaluate(strategy: &dyn LinearStrategy, q: &RangeSum, data: &Tensor) -> f64 {
    let view: HashMap<CoeffKey, f64> = strategy.transform_data(data).into_iter().collect();
    strategy
        .query_coefficients(q, data.shape())
        .unwrap()
        .entries()
        .iter()
        .map(|(k, v)| v * view.get(k).copied().unwrap_or(0.0))
        .sum()
}

fn arb_data_and_range() -> impl Strategy<Value = (Tensor, HyperRect)> {
    (2u32..5, 2u32..5).prop_flat_map(|(bx, by)| {
        let (nx, ny) = (1usize << bx, 1usize << by);
        let shape = Shape::new(vec![nx, ny]).unwrap();
        let len = shape.len();
        (
            prop::collection::vec(0.0f64..20.0, len),
            0..nx,
            0..nx,
            0..ny,
            0..ny,
        )
            .prop_map(move |(vals, a, b, c, d)| {
                let shape = Shape::new(vec![nx, ny]).unwrap();
                let t = Tensor::from_vec(shape, vals).unwrap();
                let range = HyperRect::new(vec![a.min(b), c.min(d)], vec![a.max(b), c.max(d)]);
                (t, range)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// COUNT agrees with direct evaluation across every strategy.
    #[test]
    fn count_exact_everywhere((data, range) in arb_data_and_range()) {
        let q = RangeSum::count(range);
        let expect = q.eval_direct(&data);
        let strategies: Vec<Box<dyn LinearStrategy>> = vec![
            Box::new(WaveletStrategy::new(Wavelet::Haar)),
            Box::new(WaveletStrategy::new(Wavelet::Db6)),
            Box::new(PrefixSumStrategy::count(2)),
            Box::new(IdentityStrategy),
        ];
        for s in &strategies {
            let got = evaluate(s.as_ref(), &q, &data);
            prop_assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                "{}: {got} vs {expect}", s.name());
        }
    }

    /// SUM and SUMPRODUCT agree with direct evaluation (wavelet/identity).
    #[test]
    fn polynomial_exact((data, range) in arb_data_and_range(), axis in 0usize..2) {
        for q in [
            RangeSum::sum(range.clone(), axis),
            RangeSum::sum_product(range.clone(), 0, 1),
            RangeSum::sum_product(range.clone(), axis, axis),
        ] {
            let expect = q.eval_direct(&data);
            let w = Wavelet::for_degree(q.degree() as usize).unwrap();
            let strategies: Vec<Box<dyn LinearStrategy>> = vec![
                Box::new(WaveletStrategy::new(w)),
                Box::new(IdentityStrategy),
            ];
            for s in &strategies {
                let got = evaluate(s.as_ref(), &q, &data);
                prop_assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                    "{}: {got} vs {expect}", s.name());
            }
        }
    }

    /// Prefix-sum strategies evaluate their tuned measure exactly.
    #[test]
    fn prefix_sum_measures((data, range) in arb_data_and_range(), axis in 0usize..2) {
        let q = RangeSum::sum(range, axis);
        let expect = q.eval_direct(&data);
        let s = PrefixSumStrategy::sum(2, axis);
        let got = evaluate(&s, &q, &data);
        prop_assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0));
    }

    /// eval_at is the indicator-weighted polynomial.
    #[test]
    fn eval_at_consistent((_, range) in arb_data_and_range(), x in 0usize..16, y in 0usize..16) {
        let q = RangeSum::new(range.clone(), vec![
            Monomial::constant(2, 2.0),
            Monomial::linear(2, 0),
        ]);
        let point = [x, y];
        let expect = if range.contains(&point) { 2.0 + x as f64 } else { 0.0 };
        prop_assert_eq!(q.eval_at(&point), expect);
    }

    /// Random partitions tile the domain (and the dyadic variant is
    /// aligned) for arbitrary shapes/seeds/sizes.
    #[test]
    fn partitions_always_tile(bx in 1u32..5, by in 1u32..5, cells in 1usize..40, seed in 0u64..500) {
        let shape = Shape::new(vec![1 << bx, 1 << by]).unwrap();
        let cells = cells.min(shape.len());
        let parts = partition::random_partition(&shape, cells, seed);
        prop_assert!(partition::is_partition(&shape, &parts));
        let dyadic = partition::dyadic_partition(&shape, cells, seed);
        prop_assert!(partition::is_partition(&shape, &dyadic));
        for r in &dyadic {
            for a in 0..2 {
                let len = r.extent(a);
                prop_assert!(len.is_power_of_two() && r.lo()[a] % len == 0,
                    "{r} not aligned on axis {a}");
            }
        }
    }
}
