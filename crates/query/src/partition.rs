//! Workload generators: partitions of the domain into query ranges.
//!
//! The paper's experiments "partitioned \[the\] entire data domain into 512
//! randomly sized ranges" (§6).  [`random_partition`] reproduces that
//! workload; [`grid_partition`] builds the regular coarse partitions of the
//! drill-down scenario in §1.

use batchbb_tensor::Shape;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::HyperRect;

/// Splits the full domain into exactly `cells` randomly sized
/// hyper-rectangles by repeated random binary splits of the largest
/// remaining cell. Deterministic given `seed`.
///
/// # Panics
/// Panics if `cells` is zero or exceeds the number of domain cells.
pub fn random_partition(shape: &Shape, cells: usize, seed: u64) -> Vec<HyperRect> {
    assert!(cells >= 1, "need at least one cell");
    assert!(
        cells <= shape.len(),
        "cannot split {} cells into {cells} ranges",
        shape.len()
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut parts = vec![HyperRect::full(shape)];
    while parts.len() < cells {
        // Split the cell with the largest volume: keeps the partition from
        // degenerating into slivers and guarantees progress.
        let (idx, _) = parts
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.volume())
            .expect("partition non-empty");
        let target = parts.swap_remove(idx);
        let splittable: Vec<usize> = (0..target.rank())
            .filter(|&a| target.extent(a) >= 2)
            .collect();
        debug_assert!(
            !splittable.is_empty(),
            "largest cell has volume > 1 so some axis splits"
        );
        let axis = splittable[rng.gen_range(0..splittable.len())];
        let point = rng.gen_range(target.lo()[axis]..target.hi()[axis]);
        let (a, b) = target.split(axis, point);
        parts.push(a);
        parts.push(b);
    }
    parts
}

/// Splits the full domain into `cells` *dyadically aligned* ranges by
/// repeatedly picking a random cell and halving it at the midpoint of a
/// random splittable axis. Deterministic given `seed`.
///
/// Dyadic alignment matters: an aligned range's characteristic function
/// keeps only the root-to-cell path of wavelet coefficients per dimension
/// (a handful instead of `O(log N)` per boundary per level), which is how
/// the paper's 512-query batch averages ≈1800 coefficients per query on a
/// 5-D domain.  [`random_partition`] produces unaligned ranges — the
/// expensive end of the same workload; harnesses use both.
pub fn dyadic_partition(shape: &Shape, cells: usize, seed: u64) -> Vec<HyperRect> {
    assert!(cells >= 1, "need at least one cell");
    assert!(
        cells <= shape.len(),
        "cannot split {} cells into {cells} ranges",
        shape.len()
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut parts = vec![HyperRect::full(shape)];
    while parts.len() < cells {
        // Pick a random splittable cell, biased toward larger cells so the
        // partition keeps "randomly sized" (mixed-depth) ranges without
        // degenerating into unsplittable singletons.
        let candidates: Vec<usize> = (0..parts.len())
            .filter(|&i| (0..parts[i].rank()).any(|a| parts[i].extent(a) >= 2))
            .collect();
        let idx = candidates[rng.gen_range(0..candidates.len())];
        let target = parts.swap_remove(idx);
        let splittable: Vec<usize> = (0..target.rank())
            .filter(|&a| target.extent(a) >= 2)
            .collect();
        let axis = splittable[rng.gen_range(0..splittable.len())];
        let mid = target.lo()[axis] + target.extent(axis) / 2 - 1;
        let (a, b) = target.split(axis, mid);
        parts.push(a);
        parts.push(b);
    }
    parts
}

/// Dyadic variant of [`random_partition_with_measure`]: aligned splits over
/// the non-measure axes, full span on the measure axis.
pub fn dyadic_partition_with_measure(
    shape: &Shape,
    measure_axis: usize,
    cells: usize,
    seed: u64,
) -> Vec<HyperRect> {
    assert!(measure_axis < shape.rank(), "measure axis out of range");
    let sub_dims: Vec<usize> = shape
        .dims()
        .iter()
        .enumerate()
        .filter(|&(a, _)| a != measure_axis)
        .map(|(_, &d)| d)
        .collect();
    let sub = Shape::new(sub_dims).expect("sub-domain valid");
    dyadic_partition(&sub, cells, seed)
        .into_iter()
        .map(|r| embed_with_measure(shape, measure_axis, &r))
        .collect()
}

fn embed_with_measure(shape: &Shape, measure_axis: usize, r: &HyperRect) -> HyperRect {
    let mut lo = Vec::with_capacity(shape.rank());
    let mut hi = Vec::with_capacity(shape.rank());
    let mut sub_axis = 0;
    for a in 0..shape.rank() {
        if a == measure_axis {
            lo.push(0);
            hi.push(shape.dim(a) - 1);
        } else {
            lo.push(r.lo()[sub_axis]);
            hi.push(r.hi()[sub_axis]);
            sub_axis += 1;
        }
    }
    HyperRect::new(lo, hi)
}

/// Partitions the domain into `cells` ranges that split only the
/// non-`measure_axis` dimensions; every range spans the measure axis fully.
///
/// This is the workload of the paper's §6 experiments: the 512 ranges
/// partition latitude × longitude × altitude × time, and each query sums
/// the temperature *attribute* (a degree-1 polynomial on the measure axis)
/// over its full domain.  It is also why the prefix-sum comparison sees
/// `2^4` corners per query — only 4 axes are restricted.
pub fn random_partition_with_measure(
    shape: &Shape,
    measure_axis: usize,
    cells: usize,
    seed: u64,
) -> Vec<HyperRect> {
    assert!(measure_axis < shape.rank(), "measure axis out of range");
    let sub_dims: Vec<usize> = shape
        .dims()
        .iter()
        .enumerate()
        .filter(|&(a, _)| a != measure_axis)
        .map(|(_, &d)| d)
        .collect();
    let sub = Shape::new(sub_dims).expect("sub-domain valid");
    random_partition(&sub, cells, seed)
        .into_iter()
        .map(|r| embed_with_measure(shape, measure_axis, &r))
        .collect()
}

/// Splits the domain into a regular grid with `per_axis[i]` cells along
/// axis `i` (extents need not divide evenly; remainders go to the last
/// cells).
pub fn grid_partition(shape: &Shape, per_axis: &[usize]) -> Vec<HyperRect> {
    assert_eq!(per_axis.len(), shape.rank(), "per-axis arity mismatch");
    for (a, &c) in per_axis.iter().enumerate() {
        assert!(
            c >= 1 && c <= shape.dim(a),
            "axis {a}: {c} cells out of 1..={}",
            shape.dim(a)
        );
    }
    // Per-axis breakpoints.
    let bounds: Vec<Vec<(usize, usize)>> = per_axis
        .iter()
        .enumerate()
        .map(|(a, &c)| {
            let n = shape.dim(a);
            (0..c)
                .map(|i| {
                    let lo = i * n / c;
                    let hi = ((i + 1) * n / c).min(n) - 1;
                    (lo, hi)
                })
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(per_axis.iter().product());
    let mut cursor = vec![0usize; shape.rank()];
    loop {
        let lo = cursor
            .iter()
            .enumerate()
            .map(|(a, &i)| bounds[a][i].0)
            .collect();
        let hi = cursor
            .iter()
            .enumerate()
            .map(|(a, &i)| bounds[a][i].1)
            .collect();
        out.push(HyperRect::new(lo, hi));
        let mut axis = shape.rank();
        loop {
            if axis == 0 {
                return out;
            }
            axis -= 1;
            cursor[axis] += 1;
            if cursor[axis] < per_axis[axis] {
                break;
            }
            cursor[axis] = 0;
        }
    }
}

/// Checks that `parts` exactly tile `shape`: pairwise disjoint and the
/// volumes sum to the domain size.
pub fn is_partition(shape: &Shape, parts: &[HyperRect]) -> bool {
    let vol: usize = parts.iter().map(HyperRect::volume).sum();
    if vol != shape.len() {
        return false;
    }
    parts.iter().all(|r| r.fits(shape))
        && parts
            .iter()
            .enumerate()
            .all(|(i, a)| parts[i + 1..].iter().all(|b| !a.intersects(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_partition_tiles_domain() {
        let shape = Shape::new(vec![32, 16]).unwrap();
        for cells in [1, 2, 7, 64, 512] {
            let parts = random_partition(&shape, cells, 99);
            assert_eq!(parts.len(), cells);
            assert!(is_partition(&shape, &parts), "cells={cells}");
        }
    }

    #[test]
    fn random_partition_deterministic() {
        let shape = Shape::new(vec![16, 16, 8]).unwrap();
        assert_eq!(
            random_partition(&shape, 40, 5),
            random_partition(&shape, 40, 5)
        );
        assert_ne!(
            random_partition(&shape, 40, 5),
            random_partition(&shape, 40, 6)
        );
    }

    #[test]
    fn random_partition_to_unit_cells() {
        let shape = Shape::new(vec![4, 4]).unwrap();
        let parts = random_partition(&shape, 16, 1);
        assert!(parts.iter().all(|r| r.volume() == 1));
    }

    #[test]
    fn grid_partition_regular() {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let parts = grid_partition(&shape, &[2, 4]);
        assert_eq!(parts.len(), 8);
        assert!(is_partition(&shape, &parts));
        assert!(parts.iter().all(|r| r.volume() == 8));
    }

    #[test]
    fn grid_partition_uneven_extents() {
        let shape = Shape::new(vec![8]).unwrap();
        let parts = grid_partition(&shape, &[3]);
        assert!(is_partition(&shape, &parts));
    }

    #[test]
    fn measure_partition_spans_measure_axis() {
        let shape = Shape::new(vec![8, 16, 4]).unwrap();
        let parts = random_partition_with_measure(&shape, 2, 12, 9);
        assert_eq!(parts.len(), 12);
        assert!(is_partition(&shape, &parts));
        for r in &parts {
            assert_eq!(r.lo()[2], 0);
            assert_eq!(r.hi()[2], 3, "measure axis must span fully");
        }
    }

    #[test]
    fn dyadic_partition_tiles_and_aligns() {
        let shape = Shape::new(vec![32, 64]).unwrap();
        let parts = dyadic_partition(&shape, 40, 3);
        assert_eq!(parts.len(), 40);
        assert!(is_partition(&shape, &parts));
        for r in &parts {
            for a in 0..2 {
                let len = r.extent(a);
                assert!(len.is_power_of_two(), "{r}: extent {len} not dyadic");
                assert_eq!(r.lo()[a] % len, 0, "{r}: start not aligned");
            }
        }
    }

    #[test]
    fn dyadic_measure_partition() {
        let shape = Shape::new(vec![16, 16, 8]).unwrap();
        let parts = dyadic_partition_with_measure(&shape, 1, 10, 4);
        assert!(is_partition(&shape, &parts));
        for r in &parts {
            assert_eq!((r.lo()[1], r.hi()[1]), (0, 15));
        }
    }

    #[test]
    fn is_partition_detects_overlap_and_gap() {
        let shape = Shape::new(vec![4]).unwrap();
        let overlap = vec![
            HyperRect::new(vec![0], vec![2]),
            HyperRect::new(vec![2], vec![3]),
        ];
        assert!(!is_partition(&shape, &overlap));
        let gap = vec![HyperRect::new(vec![0], vec![2])];
        assert!(!is_partition(&shape, &gap));
    }
}
