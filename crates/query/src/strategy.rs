//! Linear storage/evaluation strategies (§1.2).
//!
//! "We can use any linear transformation of the data that has a left
//! inverse as a storage strategy. We can use the left inverse to rewrite
//! query vectors to their representation in the transformation domain."
//! A [`LinearStrategy`] bundles the two halves: transform the data once
//! (materialize the view), and rewrite each incoming query into a sparse
//! list of coefficients against that view; the inner product of the two is
//! the exact query answer.

use std::fmt;

use batchbb_tensor::{CoeffKey, Shape, Tensor};
use batchbb_wavelet::{lazy_query_transform, Poly, SparseCoeffs, SparseVec1, Wavelet, DEFAULT_TOL};

use crate::{Monomial, RangeSum};

/// Errors from query rewriting.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyError {
    /// The query does not fit the data domain.
    RangeOutOfDomain,
    /// The polynomial degree exceeds what the strategy supports (e.g. the
    /// wavelet filter's vanishing moments, §3.1).
    UnsupportedDegree {
        /// Query degree.
        degree: u32,
        /// Strategy description.
        strategy: String,
    },
    /// A prefix-sum view is tuned to one measure polynomial; this query
    /// asks for a different one ("a pre-computed synopsis must be tuned",
    /// §5).
    MeasureMismatch,
    /// The strategy cannot encode coefficients for a domain of this rank
    /// (the nonstandard decomposition spends two key slots on level and
    /// subband).
    TooManyDimensions {
        /// Domain rank requested.
        rank: usize,
        /// Maximum rank this strategy supports.
        max: usize,
    },
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::RangeOutOfDomain => write!(f, "query range exceeds the data domain"),
            StrategyError::UnsupportedDegree { degree, strategy } => {
                write!(f, "degree-{degree} polynomial unsupported by {strategy}")
            }
            StrategyError::MeasureMismatch => {
                write!(f, "prefix-sum view was precomputed for a different measure")
            }
            StrategyError::TooManyDimensions { rank, max } => {
                write!(
                    f,
                    "domain rank {rank} exceeds this strategy's maximum {max}"
                )
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// A linear storage/evaluation strategy.
pub trait LinearStrategy: Send + Sync {
    /// Human-readable name for harness output.
    fn name(&self) -> String;

    /// Materializes the view: transforms the dense data vector into the
    /// coefficient entries to be bulk-loaded into a store.
    fn transform_data(&self, data: &Tensor) -> Vec<(CoeffKey, f64)>;

    /// Rewrites a query into its sparse coefficient representation in the
    /// transform domain, such that
    /// `⟨q, Δ⟩ = Σ_ξ coeffs[ξ] · view[ξ]`.
    fn query_coefficients(
        &self,
        query: &RangeSum,
        domain: &Shape,
    ) -> Result<SparseCoeffs, StrategyError>;
}

/// The paper's preferred strategy: orthonormal wavelet transform of `Δ`,
/// lazy sparse transform of each query factor.
#[derive(Debug, Clone, Copy)]
pub struct WaveletStrategy {
    /// The filter bank.
    pub wavelet: Wavelet,
    /// Use the lazy `O(L² log N)` query transform (`true`, default) or the
    /// dense `O(L·N)` reference transform (`false`) — the ✦ ablation knob.
    pub lazy: bool,
}

impl WaveletStrategy {
    /// Lazy-transform strategy with the given filter.
    pub fn new(wavelet: Wavelet) -> Self {
        WaveletStrategy {
            wavelet,
            lazy: true,
        }
    }

    /// Picks the minimal filter for a query batch's maximum degree.
    pub fn for_degree(degree: u32) -> Option<Self> {
        Wavelet::for_degree(degree as usize).map(WaveletStrategy::new)
    }

    fn factor(
        &self,
        n: usize,
        lo: usize,
        hi: usize,
        exponent: u32,
        coeff: f64,
    ) -> Result<SparseVec1, StrategyError> {
        let poly = Poly::monomial(exponent as usize).scale(coeff);
        let transform = if self.lazy {
            lazy_query_transform
        } else {
            batchbb_wavelet::dense_query_transform
        };
        transform(n, lo, hi, &poly, self.wavelet, DEFAULT_TOL).map_err(|e| match e {
            batchbb_wavelet::LazyError::DegreeTooHigh { degree, .. } => {
                StrategyError::UnsupportedDegree {
                    degree: degree as u32,
                    strategy: self.name(),
                }
            }
            _ => StrategyError::RangeOutOfDomain,
        })
    }
}

impl LinearStrategy for WaveletStrategy {
    fn name(&self) -> String {
        format!(
            "wavelet({}, {})",
            self.wavelet,
            if self.lazy { "lazy" } else { "dense" }
        )
    }

    fn transform_data(&self, data: &Tensor) -> Vec<(CoeffKey, f64)> {
        let mut t = data.clone();
        batchbb_wavelet::dwt_nd(&mut t, self.wavelet);
        SparseCoeffs::from_tensor(&t, DEFAULT_TOL)
            .entries()
            .to_vec()
    }

    fn query_coefficients(
        &self,
        query: &RangeSum,
        domain: &Shape,
    ) -> Result<SparseCoeffs, StrategyError> {
        if !query.range().fits(domain) {
            return Err(StrategyError::RangeOutOfDomain);
        }
        if query.degree() as usize > self.wavelet.max_poly_degree() {
            return Err(StrategyError::UnsupportedDegree {
                degree: query.degree(),
                strategy: self.name(),
            });
        }
        let mut terms = Vec::with_capacity(query.monomials().len());
        for m in query.monomials() {
            let mut factors = Vec::with_capacity(domain.rank());
            for axis in 0..domain.rank() {
                // Fold the scalar coefficient into the first axis factor.
                let c = if axis == 0 { m.coeff } else { 1.0 };
                factors.push(self.factor(
                    domain.dim(axis),
                    query.range().lo()[axis],
                    query.range().hi()[axis],
                    m.exponents[axis],
                    c,
                )?);
            }
            terms.push(SparseCoeffs::tensor_product(&factors, DEFAULT_TOL));
        }
        Ok(SparseCoeffs::sum(&terms, DEFAULT_TOL))
    }
}

/// Prefix-sum strategy (Ho et al. \[8\]): the view stores running sums of a
/// fixed measure `w(x) = Π_i x_i^{e_i}`; a range-sum of that measure needs
/// at most `2^d` signed corner lookups.
///
/// Demonstrates both halves of the paper's comparison: unbeatable retrieval
/// counts for the one measure it was tuned to, and a hard
/// [`StrategyError::MeasureMismatch`] for everything else.
#[derive(Debug, Clone)]
pub struct PrefixSumStrategy {
    /// Exponents of the precomputed measure (all zeros = COUNT view).
    pub measure: Vec<u32>,
}

impl PrefixSumStrategy {
    /// A COUNT view over `d` dimensions.
    pub fn count(d: usize) -> Self {
        PrefixSumStrategy {
            measure: vec![0; d],
        }
    }

    /// A view tuned to `Σ x_axis` (e.g. SUM(temperature)).
    pub fn sum(d: usize, axis: usize) -> Self {
        let mut measure = vec![0; d];
        measure[axis] = 1;
        PrefixSumStrategy { measure }
    }
}

impl LinearStrategy for PrefixSumStrategy {
    fn name(&self) -> String {
        format!("prefix-sum(measure={:?})", self.measure)
    }

    fn transform_data(&self, data: &Tensor) -> Vec<(CoeffKey, f64)> {
        // P[x] = Σ_{y ≤ x} w(y)·Δ[y]: weight each cell, then a running sum
        // along every axis.
        let shape = data.shape().clone();
        let mut t = Tensor::from_fn(shape.clone(), |ix| {
            let m = Monomial {
                coeff: 1.0,
                exponents: self.measure.clone(),
            };
            m.eval(ix)
        });
        for (slot, v) in t.data_mut().iter_mut().zip(data.data().iter()) {
            *slot *= v;
        }
        for axis in 0..shape.rank() {
            t.for_each_lane_mut(axis, |lane| {
                let mut acc = 0.0;
                for v in lane.iter_mut() {
                    acc += *v;
                    *v = acc;
                }
            });
        }
        // Prefix sums are dense: every cell is a view coefficient.
        let mut out = Vec::with_capacity(shape.len());
        for (off, &v) in t.data().iter().enumerate() {
            out.push((CoeffKey::new(&shape.unravel(off)), v));
        }
        out
    }

    fn query_coefficients(
        &self,
        query: &RangeSum,
        domain: &Shape,
    ) -> Result<SparseCoeffs, StrategyError> {
        if !query.range().fits(domain) {
            return Err(StrategyError::RangeOutOfDomain);
        }
        // Only the precomputed measure is answerable.
        let matches = query.monomials().len() == 1
            && query.monomials()[0].exponents == self.measure
            && query.monomials()[0].coeff == 1.0;
        if !matches {
            return Err(StrategyError::MeasureMismatch);
        }
        // Inclusion–exclusion over the 2^d corners; corners with any
        // coordinate at lo-1 = -1 vanish.
        let d = domain.rank();
        let mut entries = Vec::with_capacity(1 << d);
        'corner: for mask in 0u32..(1 << d) {
            let mut coords = Vec::with_capacity(d);
            let mut sign = 1.0;
            for axis in 0..d {
                if mask & (1 << axis) == 0 {
                    coords.push(query.range().hi()[axis]);
                } else {
                    let lo = query.range().lo()[axis];
                    if lo == 0 {
                        continue 'corner; // P at -1 is zero
                    }
                    coords.push(lo - 1);
                    sign = -sign;
                }
            }
            entries.push((CoeffKey::new(&coords), sign));
        }
        Ok(SparseCoeffs::from_pairs(entries, 0.0))
    }
}

/// The nonstandard (Mallat) decomposition as a storage strategy — the §7
/// "alternative transform" ablation.
///
/// Orthogonal like the standard decomposition, so exactness and the
/// Batch-Biggest-B machinery carry over unchanged; but box indicators are
/// `O(|∂R|)`-dense in it rather than polylog, so it loses the
/// coefficient-count comparison (see `coeff_count_sweep` and the
/// `nonstd` module docs).  Supports the same polynomial range-sums as
/// [`WaveletStrategy`].
#[derive(Debug, Clone, Copy)]
pub struct NonstandardStrategy {
    /// The filter bank.
    pub wavelet: Wavelet,
}

impl NonstandardStrategy {
    /// Strategy with the given filter.
    pub fn new(wavelet: Wavelet) -> Self {
        NonstandardStrategy { wavelet }
    }
}

impl LinearStrategy for NonstandardStrategy {
    fn name(&self) -> String {
        format!("nonstandard({})", self.wavelet)
    }

    fn transform_data(&self, data: &Tensor) -> Vec<(CoeffKey, f64)> {
        batchbb_wavelet::nonstd_transform(data, self.wavelet, DEFAULT_TOL)
    }

    fn query_coefficients(
        &self,
        query: &RangeSum,
        domain: &Shape,
    ) -> Result<SparseCoeffs, StrategyError> {
        if !query.range().fits(domain) {
            return Err(StrategyError::RangeOutOfDomain);
        }
        let max = batchbb_tensor::MAX_DIMS - 2;
        if domain.rank() > max {
            return Err(StrategyError::TooManyDimensions {
                rank: domain.rank(),
                max,
            });
        }
        if query.degree() as usize > self.wavelet.max_poly_degree() {
            return Err(StrategyError::UnsupportedDegree {
                degree: query.degree(),
                strategy: self.name(),
            });
        }
        let mut terms = Vec::with_capacity(query.monomials().len());
        for m in query.monomials() {
            // Materialize each separable 1-D factor densely; the
            // nonstandard rewrite has no sparse shortcut (that is the
            // finding), but factors are only O(N) per dimension.
            let factors: Vec<Vec<f64>> = (0..domain.rank())
                .map(|axis| {
                    let c = if axis == 0 { m.coeff } else { 1.0 };
                    let (lo, hi) = (query.range().lo()[axis], query.range().hi()[axis]);
                    (0..domain.dim(axis))
                        .map(|x| {
                            if x >= lo && x <= hi {
                                c * (x as f64).powi(m.exponents[axis] as i32)
                            } else {
                                0.0
                            }
                        })
                        .collect()
                })
                .collect();
            terms.push(SparseCoeffs::from_pairs(
                batchbb_wavelet::nonstd_separable(&factors, self.wavelet, DEFAULT_TOL),
                DEFAULT_TOL,
            ));
        }
        Ok(SparseCoeffs::sum(&terms, DEFAULT_TOL))
    }
}

/// No precomputation: the view *is* `Δ`, and a query's coefficients are the
/// query vector itself (`|R|` of them — the baseline that makes the
/// sparsity of the wavelet rewrite visible).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityStrategy;

impl LinearStrategy for IdentityStrategy {
    fn name(&self) -> String {
        "identity".to_string()
    }

    fn transform_data(&self, data: &Tensor) -> Vec<(CoeffKey, f64)> {
        let shape = data.shape();
        data.data()
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0)
            .map(|(off, &v)| (CoeffKey::new(&shape.unravel(off)), v))
            .collect()
    }

    fn query_coefficients(
        &self,
        query: &RangeSum,
        domain: &Shape,
    ) -> Result<SparseCoeffs, StrategyError> {
        if !query.range().fits(domain) {
            return Err(StrategyError::RangeOutOfDomain);
        }
        let mut entries = Vec::with_capacity(query.range().volume());
        let mut idx = query.range().lo().to_vec();
        loop {
            let v = query.eval_at(&idx);
            if v != 0.0 {
                entries.push((CoeffKey::new(&idx), v));
            }
            let mut axis = idx.len();
            loop {
                if axis == 0 {
                    return Ok(SparseCoeffs::from_pairs(entries, 0.0));
                }
                axis -= 1;
                idx[axis] += 1;
                if idx[axis] <= query.range().hi()[axis] {
                    break;
                }
                idx[axis] = query.range().lo()[axis];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HyperRect;
    use std::collections::HashMap;

    fn data() -> Tensor {
        Tensor::from_fn(Shape::new(vec![8, 8]).unwrap(), |ix| {
            ((ix[0] * 3 + ix[1] * 5 + 1) % 7) as f64
        })
    }

    fn evaluate(strategy: &dyn LinearStrategy, q: &RangeSum, data: &Tensor) -> f64 {
        let view: HashMap<CoeffKey, f64> = strategy.transform_data(data).into_iter().collect();
        let coeffs = strategy.query_coefficients(q, data.shape()).unwrap();
        coeffs
            .entries()
            .iter()
            .map(|(k, v)| v * view.get(k).copied().unwrap_or(0.0))
            .sum()
    }

    #[test]
    fn all_strategies_agree_with_direct_count() {
        let d = data();
        let q = RangeSum::count(HyperRect::new(vec![1, 2], vec![5, 6]));
        let expect = q.eval_direct(&d);
        let strategies: Vec<Box<dyn LinearStrategy>> = vec![
            Box::new(WaveletStrategy::new(Wavelet::Haar)),
            Box::new(WaveletStrategy::new(Wavelet::Db4)),
            Box::new(NonstandardStrategy::new(Wavelet::Haar)),
            Box::new(NonstandardStrategy::new(Wavelet::Db4)),
            Box::new(PrefixSumStrategy::count(2)),
            Box::new(IdentityStrategy),
        ];
        for s in &strategies {
            let got = evaluate(s.as_ref(), &q, &d);
            assert!(
                (got - expect).abs() < 1e-6,
                "{}: {got} vs {expect}",
                s.name()
            );
        }
    }

    #[test]
    fn all_strategies_agree_with_direct_sum() {
        let d = data();
        let q = RangeSum::sum(HyperRect::new(vec![0, 3], vec![7, 7]), 0);
        let expect = q.eval_direct(&d);
        let strategies: Vec<Box<dyn LinearStrategy>> = vec![
            Box::new(WaveletStrategy::new(Wavelet::Db4)),
            Box::new(NonstandardStrategy::new(Wavelet::Db4)),
            Box::new(PrefixSumStrategy::sum(2, 0)),
            Box::new(IdentityStrategy),
        ];
        for s in &strategies {
            let got = evaluate(s.as_ref(), &q, &d);
            assert!(
                (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                "{}: {got} vs {expect}",
                s.name()
            );
        }
    }

    #[test]
    fn wavelet_lazy_equals_dense_rewrite() {
        let shape = Shape::new(vec![16, 16]).unwrap();
        let q = RangeSum::sum(HyperRect::new(vec![3, 0], vec![12, 9]), 1);
        let lazy = WaveletStrategy {
            wavelet: Wavelet::Db4,
            lazy: true,
        };
        let dense = WaveletStrategy {
            wavelet: Wavelet::Db4,
            lazy: false,
        };
        let a = lazy.query_coefficients(&q, &shape).unwrap();
        let b = dense.query_coefficients(&q, &shape).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-8, "diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn prefix_sum_uses_few_corners() {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let s = PrefixSumStrategy::count(2);
        let q = RangeSum::count(HyperRect::new(vec![2, 3], vec![5, 6]));
        let c = s.query_coefficients(&q, &shape).unwrap();
        assert_eq!(c.nnz(), 4);
        let q0 = RangeSum::count(HyperRect::new(vec![0, 0], vec![5, 6]));
        assert_eq!(s.query_coefficients(&q0, &shape).unwrap().nnz(), 1);
    }

    #[test]
    fn prefix_sum_rejects_other_measures() {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let s = PrefixSumStrategy::count(2);
        let q = RangeSum::sum(HyperRect::new(vec![0, 0], vec![7, 7]), 0);
        assert_eq!(
            s.query_coefficients(&q, &shape),
            Err(StrategyError::MeasureMismatch)
        );
    }

    #[test]
    fn wavelet_rejects_high_degree() {
        let shape = Shape::new(vec![8, 8]).unwrap();
        let s = WaveletStrategy::new(Wavelet::Haar);
        let q = RangeSum::sum(HyperRect::full(&shape), 0);
        assert!(matches!(
            s.query_coefficients(&q, &shape),
            Err(StrategyError::UnsupportedDegree { .. })
        ));
    }

    #[test]
    fn out_of_domain_rejected_everywhere() {
        let shape = Shape::new(vec![4, 4]).unwrap();
        let q = RangeSum::count(HyperRect::new(vec![0, 0], vec![4, 3]));
        let strategies: Vec<Box<dyn LinearStrategy>> = vec![
            Box::new(WaveletStrategy::new(Wavelet::Haar)),
            Box::new(PrefixSumStrategy::count(2)),
            Box::new(IdentityStrategy),
        ];
        for s in &strategies {
            assert_eq!(
                s.query_coefficients(&q, &shape),
                Err(StrategyError::RangeOutOfDomain),
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn identity_coefficients_are_query_vector() {
        let shape = Shape::new(vec![4, 4]).unwrap();
        let q = RangeSum::sum(HyperRect::new(vec![1, 1], vec![2, 2]), 0);
        let c = IdentityStrategy.query_coefficients(&q, &shape).unwrap();
        assert_eq!(c.nnz(), 4);
        for (k, v) in c.entries() {
            assert_eq!(*v, k.coord(0) as f64);
        }
    }

    #[test]
    fn nonstandard_rejects_high_rank_domains() {
        let dims = vec![2usize; batchbb_tensor::MAX_DIMS];
        let shape = Shape::new(dims.clone()).unwrap();
        let q = RangeSum::count(HyperRect::full(&shape));
        let s = NonstandardStrategy::new(Wavelet::Haar);
        assert!(matches!(
            s.query_coefficients(&q, &shape),
            Err(StrategyError::TooManyDimensions { .. })
        ));
    }

    #[test]
    fn multi_monomial_query_through_wavelets() {
        // variance-style polynomial: x0² - 4·x0 + 4 = (x0-2)²
        let d = data();
        let range = HyperRect::new(vec![0, 0], vec![7, 7]);
        let q = RangeSum::new(
            range,
            vec![
                Monomial {
                    coeff: 1.0,
                    exponents: vec![2, 0],
                },
                Monomial {
                    coeff: -4.0,
                    exponents: vec![1, 0],
                },
                Monomial::constant(2, 4.0),
            ],
        );
        let s = WaveletStrategy::new(Wavelet::Db6);
        let got = evaluate(&s, &q, &d);
        let expect = q.eval_direct(&d);
        assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0));
    }
}
