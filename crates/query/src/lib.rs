//! Vector queries and linear storage/evaluation strategies.
//!
//! §3 of the paper recasts range aggregates as *vector queries* — inner
//! products `⟨q, Δ⟩` of a query vector with the data frequency
//! distribution.  This crate provides:
//!
//! * [`HyperRect`] — rectangular ranges `R ⊂ Dom(F)`;
//! * [`RangeSum`] — polynomial range-sums `q[x] = p(x)·χ_R(x)` with
//!   constructors for COUNT, SUM, and SUMPRODUCT (Definition 1);
//! * [`derived`] — AVERAGE, VARIANCE, COVARIANCE computed from batches of
//!   vector queries, as §3 describes;
//! * [`partition`] — workload generators (the paper's experiments partition
//!   the whole domain into 512 randomly sized ranges);
//! * [`LinearStrategy`] — the abstraction of §1.2: any linear transform of
//!   the data with a left inverse yields an evaluation strategy, with
//!   [`WaveletStrategy`], [`PrefixSumStrategy`], [`IdentityStrategy`] and
//!   [`NonstandardStrategy`] implementations.
//!
//! # Example: rewrite a COUNT query against two different views
//!
//! ```
//! use batchbb_query::{HyperRect, LinearStrategy, PrefixSumStrategy, RangeSum, WaveletStrategy};
//! use batchbb_tensor::Shape;
//! use batchbb_wavelet::Wavelet;
//!
//! let domain = Shape::new(vec![64, 64]).unwrap();
//! let q = RangeSum::count(HyperRect::new(vec![5, 10], vec![40, 63]));
//!
//! let wavelet = WaveletStrategy::new(Wavelet::Haar);
//! let prefix = PrefixSumStrategy::count(2);
//! let w_coeffs = wavelet.query_coefficients(&q, &domain).unwrap();
//! let p_coeffs = prefix.query_coefficients(&q, &domain).unwrap();
//! assert!(w_coeffs.nnz() <= 2 * (2 * 7) * (2 * 7)); // O((2 log N)^d)
//! assert!(p_coeffs.nnz() <= 4);                     // ≤ 2^d corners
//! ```

#![warn(missing_docs)]

pub mod derived;
pub mod partition;
mod range;
mod rangesum;
mod strategy;

pub use range::HyperRect;
pub use rangesum::{Monomial, RangeSum};
pub use strategy::{
    IdentityStrategy, LinearStrategy, NonstandardStrategy, PrefixSumStrategy, StrategyError,
    WaveletStrategy,
};
