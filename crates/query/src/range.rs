//! Rectangular ranges over a dyadic domain.

use std::fmt;

use batchbb_tensor::Shape;

/// A hyper-rectangle `R = Π_i [lo_i, hi_i]` with *inclusive* bounds in
/// binned coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HyperRect {
    lo: Vec<usize>,
    hi: Vec<usize>,
}

impl HyperRect {
    /// Builds a range; panics if arities differ or any `lo > hi`.
    pub fn new(lo: Vec<usize>, hi: Vec<usize>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound arity mismatch");
        assert!(!lo.is_empty(), "range needs at least one dimension");
        for (axis, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
            assert!(l <= h, "empty range on axis {axis}: [{l},{h}]");
        }
        HyperRect { lo, hi }
    }

    /// The full domain of `shape`.
    pub fn full(shape: &Shape) -> Self {
        HyperRect {
            lo: vec![0; shape.rank()],
            hi: shape.dims().iter().map(|&d| d - 1).collect(),
        }
    }

    /// Lower bounds (inclusive).
    pub fn lo(&self) -> &[usize] {
        &self.lo
    }

    /// Upper bounds (inclusive).
    pub fn hi(&self) -> &[usize] {
        &self.hi
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.lo.len()
    }

    /// Extent along one axis (inclusive width).
    pub fn extent(&self, axis: usize) -> usize {
        self.hi[axis] - self.lo[axis] + 1
    }

    /// Number of cells covered.
    pub fn volume(&self) -> usize {
        (0..self.rank()).map(|a| self.extent(a)).product()
    }

    /// True if the range lies within `shape`.
    pub fn fits(&self, shape: &Shape) -> bool {
        self.rank() == shape.rank()
            && self
                .hi
                .iter()
                .zip(shape.dims().iter())
                .all(|(&h, &d)| h < d)
    }

    /// True if `point` lies inside the range.
    pub fn contains(&self, point: &[usize]) -> bool {
        point.len() == self.rank()
            && point
                .iter()
                .zip(self.lo.iter().zip(self.hi.iter()))
                .all(|(&p, (&l, &h))| l <= p && p <= h)
    }

    /// True if the two ranges share at least one cell.
    pub fn intersects(&self, other: &HyperRect) -> bool {
        self.rank() == other.rank()
            && (0..self.rank()).all(|a| self.lo[a] <= other.hi[a] && other.lo[a] <= self.hi[a])
    }

    /// True if the ranges share a `(d-1)`-dimensional face (used to build
    /// neighbour graphs for Laplacian penalties).
    pub fn is_adjacent(&self, other: &HyperRect) -> bool {
        if self.rank() != other.rank() || self.intersects(other) {
            return false;
        }
        let mut touching_axis = None;
        for a in 0..self.rank() {
            let overlap = self.lo[a] <= other.hi[a] && other.lo[a] <= self.hi[a];
            if overlap {
                continue;
            }
            let touches = self.hi[a] + 1 == other.lo[a] || other.hi[a] + 1 == self.lo[a];
            if !touches || touching_axis.is_some() {
                return false;
            }
            touching_axis = Some(a);
        }
        touching_axis.is_some()
    }

    /// Splits the range at `point` along `axis`, returning
    /// `([lo, point], [point+1, hi])`. Panics unless
    /// `lo[axis] <= point < hi[axis]`.
    pub fn split(&self, axis: usize, point: usize) -> (HyperRect, HyperRect) {
        assert!(
            self.lo[axis] <= point && point < self.hi[axis],
            "split point {point} outside ({},{})",
            self.lo[axis],
            self.hi[axis]
        );
        let mut left = self.clone();
        let mut right = self.clone();
        left.hi[axis] = point;
        right.lo[axis] = point + 1;
        (left, right)
    }
}

impl fmt::Display for HyperRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in 0..self.rank() {
            if a > 0 {
                write!(f, "×")?;
            }
            write!(f, "[{},{}]", self.lo[a], self.hi[a])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let r = HyperRect::new(vec![2, 0], vec![5, 3]);
        assert_eq!(r.volume(), 16);
        assert_eq!(r.extent(0), 4);
        assert!(r.contains(&[2, 3]));
        assert!(!r.contains(&[6, 0]));
    }

    #[test]
    fn full_covers_shape() {
        let shape = Shape::new(vec![8, 4]).unwrap();
        let r = HyperRect::full(&shape);
        assert_eq!(r.volume(), 32);
        assert!(r.fits(&shape));
    }

    #[test]
    fn fits_checks_bounds() {
        let shape = Shape::new(vec![8, 4]).unwrap();
        assert!(!HyperRect::new(vec![0, 0], vec![8, 3]).fits(&shape));
        assert!(!HyperRect::new(vec![0], vec![3]).fits(&shape));
    }

    #[test]
    fn intersection() {
        let a = HyperRect::new(vec![0, 0], vec![3, 3]);
        let b = HyperRect::new(vec![3, 3], vec![5, 5]);
        let c = HyperRect::new(vec![4, 0], vec![5, 2]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn adjacency() {
        let a = HyperRect::new(vec![0, 0], vec![3, 3]);
        let b = HyperRect::new(vec![4, 0], vec![7, 3]); // shares x-face
        let c = HyperRect::new(vec![4, 4], vec![7, 7]); // corner only
        let d = HyperRect::new(vec![6, 0], vec![7, 3]); // gap
        assert!(a.is_adjacent(&b));
        assert!(b.is_adjacent(&a));
        assert!(!a.is_adjacent(&c), "corner contact is not adjacency");
        assert!(!a.is_adjacent(&d));
        assert!(!a.is_adjacent(&a), "overlap is not adjacency");
    }

    #[test]
    fn split_partitions() {
        let r = HyperRect::new(vec![0, 0], vec![7, 7]);
        let (l, rgt) = r.split(0, 3);
        assert_eq!(l.hi()[0], 3);
        assert_eq!(rgt.lo()[0], 4);
        assert_eq!(l.volume() + rgt.volume(), r.volume());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_bounds_panic() {
        let _ = HyperRect::new(vec![5], vec![4]);
    }
}
