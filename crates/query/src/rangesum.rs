//! Polynomial range-sum queries (Definition 1 of the paper).

use batchbb_tensor::Tensor;

use crate::HyperRect;

/// A monomial `c · Π_i x_i^{e_i}` over the schema's attributes.
///
/// General polynomials are sums of monomials; each monomial is separable
/// across dimensions, which is what lets query wavelet coefficients be
/// computed as tensor products of 1-D factor transforms.
#[derive(Debug, Clone, PartialEq)]
pub struct Monomial {
    /// Scalar coefficient `c`.
    pub coeff: f64,
    /// Per-dimension exponents `e_i`.
    pub exponents: Vec<u32>,
}

impl Monomial {
    /// The constant monomial `c` over `d` dimensions.
    pub fn constant(d: usize, c: f64) -> Self {
        Monomial {
            coeff: c,
            exponents: vec![0; d],
        }
    }

    /// The monomial `x_axis` over `d` dimensions.
    pub fn linear(d: usize, axis: usize) -> Self {
        let mut exponents = vec![0; d];
        exponents[axis] = 1;
        Monomial {
            coeff: 1.0,
            exponents,
        }
    }

    /// Evaluates at a domain point.
    pub fn eval(&self, point: &[usize]) -> f64 {
        let mut v = self.coeff;
        for (&x, &e) in point.iter().zip(self.exponents.iter()) {
            if e > 0 {
                v *= (x as f64).powi(e as i32);
            }
        }
        v
    }

    /// Maximum per-dimension exponent.
    pub fn degree(&self) -> u32 {
        self.exponents.iter().copied().max().unwrap_or(0)
    }
}

/// A polynomial range-sum `q[x] = p(x)·χ_R(x)`: the vector query whose
/// result is `⟨q, Δ⟩ = Σ_{x∈R} p(x)·Δ[x]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeSum {
    range: HyperRect,
    monomials: Vec<Monomial>,
}

impl RangeSum {
    /// A general polynomial range-sum. Panics if any monomial's arity
    /// differs from the range's.
    pub fn new(range: HyperRect, monomials: Vec<Monomial>) -> Self {
        assert!(
            !monomials.is_empty(),
            "polynomial must have at least one term"
        );
        for m in &monomials {
            assert_eq!(m.exponents.len(), range.rank(), "monomial arity mismatch");
        }
        RangeSum { range, monomials }
    }

    /// `COUNT(R)` — how many tuples fall in `R` (§2.1).
    pub fn count(range: HyperRect) -> Self {
        let d = range.rank();
        RangeSum::new(range, vec![Monomial::constant(d, 1.0)])
    }

    /// `SUM(R, attribute axis)` — `Σ_{x∈R} x_axis·Δ[x]` (§3, query 2).
    pub fn sum(range: HyperRect, axis: usize) -> Self {
        let d = range.rank();
        assert!(axis < d, "axis out of range");
        RangeSum::new(range, vec![Monomial::linear(d, axis)])
    }

    /// `SUMPRODUCT(R, i, j)` — `Σ_{x∈R} x_i·x_j·Δ[x]` (§3, query 3).
    /// `i == j` gives the sum of squares.
    pub fn sum_product(range: HyperRect, i: usize, j: usize) -> Self {
        let d = range.rank();
        assert!(i < d && j < d, "axis out of range");
        let mut exponents = vec![0u32; d];
        exponents[i] += 1;
        exponents[j] += 1;
        RangeSum::new(
            range,
            vec![Monomial {
                coeff: 1.0,
                exponents,
            }],
        )
    }

    /// The range `R`.
    pub fn range(&self) -> &HyperRect {
        &self.range
    }

    /// The polynomial's monomials.
    pub fn monomials(&self) -> &[Monomial] {
        &self.monomials
    }

    /// Maximum per-dimension degree `δ` — determines the minimal filter
    /// length `2δ+2` (§3.1).
    pub fn degree(&self) -> u32 {
        self.monomials
            .iter()
            .map(Monomial::degree)
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the query vector at one domain point.
    pub fn eval_at(&self, point: &[usize]) -> f64 {
        if !self.range.contains(point) {
            return 0.0;
        }
        self.monomials.iter().map(|m| m.eval(point)).sum()
    }

    /// Direct evaluation against a dense data vector — the `O(N^d)`
    /// reference oracle.
    pub fn eval_direct(&self, data: &Tensor) -> f64 {
        assert_eq!(data.shape().rank(), self.range.rank(), "rank mismatch");
        let mut acc = 0.0;
        let mut idx = self.range.lo().to_vec();
        loop {
            let delta = data[idx.as_slice()];
            if delta != 0.0 {
                acc += self.eval_at(&idx) * delta;
            }
            let mut axis = idx.len();
            loop {
                if axis == 0 {
                    return acc;
                }
                axis -= 1;
                idx[axis] += 1;
                if idx[axis] <= self.range.hi()[axis] {
                    break;
                }
                idx[axis] = self.range.lo()[axis];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_tensor::Shape;

    fn data() -> Tensor {
        let mut t = Tensor::zeros(Shape::new(vec![8, 8]).unwrap());
        t[&[1, 1]] = 1.0;
        t[&[2, 5]] = 2.0;
        t[&[7, 7]] = 1.0;
        t
    }

    #[test]
    fn count_counts() {
        let q = RangeSum::count(HyperRect::new(vec![0, 0], vec![3, 7]));
        assert_eq!(q.eval_direct(&data()), 3.0);
        assert_eq!(q.degree(), 0);
    }

    #[test]
    fn sum_weights_by_coordinate() {
        let q = RangeSum::sum(HyperRect::new(vec![0, 0], vec![7, 7]), 1);
        // 1·1 + 5·2 + 7·1 = 18
        assert_eq!(q.eval_direct(&data()), 18.0);
        assert_eq!(q.degree(), 1);
    }

    #[test]
    fn sum_product_cross_and_square() {
        let q = RangeSum::sum_product(HyperRect::new(vec![0, 0], vec![7, 7]), 0, 1);
        // 1·1·1 + 2·5·2 + 7·7·1 = 70
        assert_eq!(q.eval_direct(&data()), 70.0);
        let sq = RangeSum::sum_product(HyperRect::new(vec![0, 0], vec![7, 7]), 1, 1);
        // 1 + 25·2 + 49 = 100, degree 2 on axis 1
        assert_eq!(sq.eval_direct(&data()), 100.0);
        assert_eq!(sq.degree(), 2);
    }

    #[test]
    fn eval_at_respects_range() {
        let q = RangeSum::count(HyperRect::new(vec![2, 2], vec![4, 4]));
        assert_eq!(q.eval_at(&[3, 3]), 1.0);
        assert_eq!(q.eval_at(&[1, 3]), 0.0);
    }

    #[test]
    fn multi_monomial_polynomial() {
        // p(x) = 2 + 3·x0  over a singleton range {(2,0)}
        let range = HyperRect::new(vec![2, 0], vec![2, 0]);
        let q = RangeSum::new(
            range,
            vec![
                Monomial::constant(2, 2.0),
                Monomial {
                    coeff: 3.0,
                    exponents: vec![1, 0],
                },
            ],
        );
        assert_eq!(q.eval_at(&[2, 0]), 8.0);
    }
}
