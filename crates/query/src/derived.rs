//! Derived statistics from batches of vector queries (§3).
//!
//! "The three vector queries above can be used to compute AVERAGE and
//! VARIANCE of any attribute, as well as the COVARIANCE between any two
//! attributes."  These helpers perform that post-processing on the scalar
//! results of COUNT / SUM / SUMPRODUCT queries — exact or progressive.

/// `AVERAGE = SUM / COUNT`; `None` when the range is empty.
pub fn average(sum: f64, count: f64) -> Option<f64> {
    if count <= 0.0 {
        None
    } else {
        Some(sum / count)
    }
}

/// Population variance from the three aggregate results:
/// `VAR(X) = E[X²] − E[X]² = sum_sq/count − (sum/count)²`.
///
/// `None` when the range is empty. Tiny negative values from progressive
/// estimates are clamped to zero.
pub fn variance(sum: f64, sum_sq: f64, count: f64) -> Option<f64> {
    if count <= 0.0 {
        return None;
    }
    let mean = sum / count;
    Some((sum_sq / count - mean * mean).max(0.0))
}

/// Population covariance:
/// `COV(X,Y) = E[XY] − E[X]E[Y]`.
pub fn covariance(sum_x: f64, sum_y: f64, sum_xy: f64, count: f64) -> Option<f64> {
    if count <= 0.0 {
        return None;
    }
    Some(sum_xy / count - (sum_x / count) * (sum_y / count))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_known_values() {
        assert_eq!(average(10.0, 4.0), Some(2.5));
        assert_eq!(average(1.0, 0.0), None);
    }

    #[test]
    fn variance_matches_direct() {
        // values {1, 2, 3, 6}: mean 3, E[X²] = (1+4+9+36)/4 = 12.5, var 3.5
        let (sum, sum_sq, n) = (12.0, 50.0, 4.0);
        assert_eq!(variance(sum, sum_sq, n), Some(3.5));
    }

    #[test]
    fn variance_clamps_negative_noise() {
        assert_eq!(variance(4.0, 3.999, 4.0), Some(0.0));
    }

    #[test]
    fn covariance_matches_direct() {
        // pairs (1,2), (3,6): E[XY] = (2+18)/2 = 10, E[X]=2, E[Y]=4 -> 2
        assert_eq!(covariance(4.0, 8.0, 20.0, 2.0), Some(2.0));
        assert_eq!(covariance(0.0, 0.0, 0.0, 0.0), None);
    }
}
