//! Per-batch job state, snapshots, and results.

use std::sync::atomic::{AtomicBool, Ordering};

use batchbb_core::{DegradationReport, DrainStatus, ProgressiveExecutor};
use batchbb_obs::{Lifecycle, MetricsSnapshot, Phase};
use batchbb_storage::VersionId;
use batchbb_tensor::CoeffKey;
use parking_lot::Mutex;

use crate::slo::{AdmissionEstimate, SloContract, SloOutcome};
use crate::ServeConfig;

/// How a served batch ended.
///
/// Every terminal state except [`BatchStatus::Rejected`] publishes the
/// progressive estimates reached so far *with* their certified Theorem-1/2
/// bounds ([`BatchResult::report`]); rejected batches publish the full
/// initial certificate (zero retrievals). [`BatchResult::slo`] classifies
/// each status against the batch's contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// Every master-list coefficient retrieved; estimates are exact.
    Exact,
    /// The certified worst-case bound reached the contract's target ε;
    /// the batch finalized early with that certificate.
    BoundReached,
    /// Persistent faults left coefficients deferred; estimates carry the
    /// penalty bound of the final [`DegradationReport`].
    Degraded,
    /// The retry policy's total attempt budget ran out.
    BudgetExhausted,
    /// The contract's deadline expired; the batch finalized at the
    /// certified bound it had reached by then.
    DeadlineExpired,
    /// Load shedding: the pool's consumed attempts overran the declared
    /// capacity (fault-inflated costs), so the batch finalized early at
    /// its certified bound instead of overrunning further.
    Shed,
    /// The batch was cancelled via [`BatchHandle::cancel`]; the result
    /// holds the progressive estimates reached by then.
    Cancelled,
    /// Admission control refused the batch (see
    /// [`SloOutcome::Rejected`]); it performed zero retrievals.
    Rejected,
}

impl BatchStatus {
    /// The status's trace/event label.
    pub(crate) fn label(self) -> &'static str {
        match self {
            BatchStatus::Exact => "exact",
            BatchStatus::BoundReached => "bound_reached",
            BatchStatus::Degraded => "degraded",
            BatchStatus::BudgetExhausted => "budget_exhausted",
            BatchStatus::DeadlineExpired => "deadline_expired",
            BatchStatus::Shed => "shed",
            BatchStatus::Cancelled => "cancelled",
            BatchStatus::Rejected => "rejected",
        }
    }
}

impl From<DrainStatus> for BatchStatus {
    fn from(status: DrainStatus) -> Self {
        match status {
            DrainStatus::Exact => BatchStatus::Exact,
            DrainStatus::Degraded => BatchStatus::Degraded,
            DrainStatus::BudgetExhausted => BatchStatus::BudgetExhausted,
            DrainStatus::BoundReached => BatchStatus::BoundReached,
        }
    }
}

/// Final outcome of one served batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Terminal state of the batch.
    pub status: BatchStatus,
    /// How the batch fared against its [`SloContract`]: within target
    /// ([`SloOutcome::Met`]), finalized above it
    /// ([`SloOutcome::DegradedAtBound`]), or refused at admission
    /// ([`SloOutcome::Rejected`]). Under the default non-binding contract
    /// every completed batch reports `Met`.
    pub slo: SloOutcome,
    /// The full degraded-result contract at finish (estimates, deferred
    /// population, Theorem 1/2 bounds, fault counters).
    pub report: DegradationReport,
    /// Every `(key, value)` this batch retrieved, in sorted key order —
    /// the replay witness: re-running the batch serially against exactly
    /// these values reproduces `report.estimates` bit for bit.
    pub retrieved_entries: Vec<(CoeffKey, f64)>,
    /// How many scheduling slices the batch consumed.
    pub slices: usize,
    /// Theorem 1's worst-case bound sampled after every slice; monotone
    /// non-increasing regardless of scheduling interleaving.
    pub bound_history: Vec<f64>,
    /// The final state of the server's shared
    /// [`batchbb_obs::MetricsRegistry`], stamped onto every result once
    /// the whole run has finished (so all results of one run carry the
    /// *same* snapshot and its counters cover the *entire* run — taking
    /// per-batch snapshots mid-flight would capture racy prefixes).
    /// Empty when the run had no registry configured.
    pub metrics: MetricsSnapshot,
    /// The coefficient-store version this batch's answer is certified
    /// against: in versioned serving
    /// ([`BatchServer::serve_versioned`](crate::BatchServer::serve_versioned))
    /// the version pinned at admission, bumped each time
    /// [`ServeSession::advance_batch`](crate::ServeSession::advance_batch)
    /// opts the batch in to a newer snapshot. `None` for sessions over a
    /// plain (unversioned) store.
    pub pinned_version: Option<VersionId>,
}

impl BatchResult {
    /// The final progressive estimates (one per query in the batch).
    pub fn estimates(&self) -> &[f64] {
        &self.report.estimates
    }
}

/// A point-in-time progress view of a running batch, readable without
/// pausing the batch for longer than a snapshot clone.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSnapshot {
    /// Current progressive estimates (valid at every prefix).
    pub estimates: Vec<f64>,
    /// Coefficients retrieved so far.
    pub retrieved: usize,
    /// Master-list coefficients still unretrieved.
    pub remaining: usize,
    /// Coefficients parked in the deferral queue.
    pub deferred: usize,
    /// Theorem 1's current worst-case penalty bound.
    pub worst_case_bound: f64,
    /// Theorem 2's current expected penalty.
    pub expected_penalty: f64,
    /// Scheduling slices consumed so far.
    pub slices: usize,
    /// Whether the batch has published its final result.
    pub finished: bool,
}

/// Executor state guarded by the job's slice lock. Workers hold this lock
/// for one slice at a time; the *unversioned* session's update barrier
/// holds every job's lock at once, while versioned sessions never take it
/// during [`ServeSession::update`](crate::ServeSession::update) — only
/// [`ServeSession::advance_batch`](crate::ServeSession::advance_batch)
/// locks the one job it repairs.
pub(crate) struct JobState<'a> {
    pub(crate) exec: ProgressiveExecutor<'a>,
    pub(crate) slices: usize,
    pub(crate) bound_history: Vec<f64>,
    pub(crate) result: Option<BatchResult>,
    /// The store version this job currently reads (versioned mode only).
    pub(crate) pinned_version: Option<VersionId>,
}

/// One submitted batch: its executor (behind the slice lock), its
/// published snapshot, its contract, the cancellation flag, and — when
/// the run is traced — its phase lifecycle.
pub(crate) struct JobCell<'a> {
    pub(crate) index: usize,
    pub(crate) contract: SloContract,
    pub(crate) state: Mutex<JobState<'a>>,
    pub(crate) snapshot: Mutex<BatchSnapshot>,
    pub(crate) cancelled: AtomicBool,
    pub(crate) finished: AtomicBool,
    /// The batch's phase recorder, `None` on untraced runs. Shared with
    /// the executor's observer (which carves out `StoreWait`); the pool
    /// writes the remaining transitions and flushes at finalize.
    pub(crate) lifecycle: Option<Lifecycle>,
}

impl<'a> JobCell<'a> {
    pub(crate) fn new(
        index: usize,
        exec: ProgressiveExecutor<'a>,
        config: &ServeConfig,
        contract: SloContract,
        pinned: Option<VersionId>,
        lifecycle: Option<Lifecycle>,
    ) -> Self {
        let snapshot = snapshot_of(&exec, 0, false, config);
        JobCell {
            index,
            contract,
            state: Mutex::new(JobState {
                exec,
                slices: 0,
                bound_history: Vec::new(),
                result: None,
                pinned_version: pinned,
            }),
            snapshot: Mutex::new(snapshot),
            cancelled: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            lifecycle,
        }
    }

    /// Enters `phase` on the batch's lifecycle; a no-op on untraced runs
    /// (and after the lifecycle has flushed).
    pub(crate) fn enter_phase(&self, phase: Phase) {
        if let Some(lifecycle) = &self.lifecycle {
            lifecycle
                .lock()
                .expect("lifecycle poisoned")
                .transition(phase);
        }
    }

    /// Flushes the batch's lifecycle spans into the trace (idempotent).
    pub(crate) fn flush_lifecycle(&self) {
        if let Some(lifecycle) = &self.lifecycle {
            lifecycle.lock().expect("lifecycle poisoned").flush();
        }
    }

    /// A cell for a batch admission refused: born finished, zero
    /// retrievals, with the full *initial* Theorem-1/2 certificate as its
    /// published contract. The rejection neither runs nor tears — the
    /// result is as valid (and as wide) as an estimate can be.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rejected(
        index: usize,
        exec: ProgressiveExecutor<'a>,
        config: &ServeConfig,
        contract: SloContract,
        estimate: &AdmissionEstimate,
        capacity: u64,
        pinned: Option<VersionId>,
        lifecycle: Option<Lifecycle>,
    ) -> Self {
        // A rejected batch's lifecycle is admission → finalize, flushed on
        // the spot: it never runs, so its trace is complete at birth.
        if let Some(lifecycle) = &lifecycle {
            let mut recorder = lifecycle.lock().expect("lifecycle poisoned");
            recorder.transition(Phase::Finalize);
            recorder.flush();
        }
        let report = exec.degradation_report(config.n_total, config.k_abs_sum);
        let snapshot = snapshot_of(&exec, 0, true, config);
        let result = BatchResult {
            status: BatchStatus::Rejected,
            slo: SloOutcome::Rejected {
                estimated_cost: estimate.steps_to_target,
                capacity,
            },
            bound_history: vec![report.worst_case_bound],
            report,
            retrieved_entries: Vec::new(),
            slices: 0,
            metrics: Default::default(),
            pinned_version: pinned,
        };
        JobCell {
            index,
            contract,
            state: Mutex::new(JobState {
                exec,
                slices: 0,
                bound_history: Vec::new(),
                result: Some(result),
                pinned_version: pinned,
            }),
            snapshot: Mutex::new(snapshot),
            cancelled: AtomicBool::new(false),
            finished: AtomicBool::new(true),
            lifecycle,
        }
    }
}

/// Builds a [`BatchSnapshot`] from live executor state.
pub(crate) fn snapshot_of(
    exec: &ProgressiveExecutor<'_>,
    slices: usize,
    finished: bool,
    config: &ServeConfig,
) -> BatchSnapshot {
    let report = exec.degradation_report(config.n_total, config.k_abs_sum);
    BatchSnapshot {
        estimates: report.estimates,
        retrieved: exec.retrieved(),
        remaining: exec.remaining(),
        deferred: exec.deferred_count(),
        worst_case_bound: report.worst_case_bound,
        expected_penalty: report.expected_penalty,
        slices,
        finished,
    }
}

/// Caller-side view of one admitted batch: progressive snapshots and
/// cooperative cancellation.
///
/// Handles are only reachable inside
/// [`BatchServer::serve_with`](crate::BatchServer::serve_with)'s driver
/// closure, which runs on the caller's thread while the pool works.
#[derive(Clone, Copy)]
pub struct BatchHandle<'s, 'a> {
    pub(crate) cell: &'s JobCell<'a>,
    pub(crate) index: usize,
}

impl<'s, 'a> BatchHandle<'s, 'a> {
    /// The batch's admission index (its position in the request slice and
    /// its `batch` trace label).
    pub fn index(&self) -> usize {
        self.index
    }

    /// A clone of the batch's latest published progress snapshot.
    ///
    /// Snapshots refresh after every scheduling slice, so this shows
    /// slice-granular progress without contending on the executor itself.
    pub fn snapshot(&self) -> BatchSnapshot {
        self.cell.snapshot.lock().clone()
    }

    /// Whether the batch has published its final [`BatchResult`].
    pub fn is_finished(&self) -> bool {
        self.cell.finished.load(Ordering::Acquire)
    }

    /// Requests cooperative cancellation.
    ///
    /// The batch finalizes with [`BatchStatus::Cancelled`] at its next
    /// scheduling slice, keeping the progressive estimates (and their
    /// penalty bounds) it had reached. Cancelling a finished batch is a
    /// no-op. Returns whether the flag was newly set.
    pub fn cancel(&self) -> bool {
        !self.cell.cancelled.swap(true, Ordering::AcqRel)
    }
}
