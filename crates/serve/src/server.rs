//! The batch server: a fixed worker pool multiplexing many progressive
//! executors over one coefficient store.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use batchbb_core::{DegradationReport, ExecObserver, ProgressiveExecutor};
use batchbb_obs::LabeledSink;
use batchbb_storage::{CoefficientStore, ShardedCachingStore};
use batchbb_tensor::CoeffKey;
use parking_lot::Mutex;

use crate::job::{JobCell, JobState};
use crate::{BatchHandle, BatchRequest, BatchResult, BatchSnapshot, BatchStatus, ServeConfig};

/// A thread-pool batch server.
///
/// Each admitted [`BatchRequest`] gets its own [`ProgressiveExecutor`];
/// a fixed pool of workers advances them in bounded *slices*
/// ([`ServeConfig::slice_steps`] retrievals at a time), work-stealing
/// across per-worker run queues so a huge batch cannot starve small ones:
/// after every slice the batch goes back to the end of a queue and the
/// worker picks up whatever is runnable next.
///
/// Determinism: scheduling decides only *interleaving*, never *content*.
/// Every batch walks its own importance order, and final estimates are
/// re-summed canonically once exact, so each batch's final answer is
/// bit-identical to running it alone — the concurrency tests assert this
/// against serial replays.
pub struct BatchServer {
    config: ServeConfig,
}

impl BatchServer {
    /// Creates a server with the given pool configuration.
    pub fn new(config: ServeConfig) -> Self {
        BatchServer { config }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves every request to completion and returns the results in
    /// request order.
    pub fn serve(
        &self,
        store: &dyn CoefficientStore,
        requests: &[BatchRequest<'_>],
    ) -> Vec<BatchResult> {
        self.serve_with(store, requests, |_| ()).0
    }

    /// Serves every request while running `driver` on the calling thread.
    ///
    /// The driver observes and steers the in-flight pool through a
    /// [`ServeSession`]: progressive snapshots and cancellation per batch
    /// ([`BatchHandle`]), and live data updates applied atomically across
    /// the store and every executor ([`ServeSession::update`]). The call
    /// returns once the driver has returned *and* every batch has
    /// published its final result.
    pub fn serve_with<R>(
        &self,
        store: &dyn CoefficientStore,
        requests: &[BatchRequest<'_>],
        driver: impl FnOnce(&ServeSession<'_, '_>) -> R,
    ) -> (Vec<BatchResult>, R) {
        let config = &self.config;
        let cache = config
            .share_cache
            .then(|| ShardedCachingStore::with_shards(store, config.cache_shards));
        let eff: &dyn CoefficientStore = match &cache {
            Some(cache) => cache,
            None => store,
        };

        // Executors are built serially on the caller thread: importance
        // scoring sees a quiescent store and needs no `Penalty` to cross
        // a thread boundary.
        let jobs: Vec<JobCell<'_>> = requests
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let mut exec = ProgressiveExecutor::new(req.batch, req.penalty, eff)
                    .with_prefetch_window(config.prefetch_window);
                if let Some(observer) = self.observer_for(i) {
                    exec = exec.with_observer(observer);
                }
                JobCell::new(exec, config)
            })
            .collect();

        let active = AtomicUsize::new(jobs.len());
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..config.workers)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        for index in 0..jobs.len() {
            queues[index % config.workers].lock().push_back(index);
        }

        let driver_out = {
            let session = ServeSession {
                jobs: &jobs,
                cache: cache.as_ref(),
                config,
            };
            std::thread::scope(|scope| {
                for me in 0..config.workers {
                    let jobs = &jobs;
                    let queues = &queues;
                    let active = &active;
                    scope.spawn(move || worker_loop(me, jobs, queues, active, config));
                }
                driver(&session)
            })
        };

        // One run-wide final metrics snapshot: every result of this run
        // carries the same totals (a per-batch snapshot at finalize time
        // would capture a racy prefix of the shared registry), and — when
        // a trace sink is configured — the snapshot is appended to the
        // trace as `metrics.*` events, so metrics and events land in one
        // replayable file.
        let metrics = config
            .registry
            .as_ref()
            .map(|registry| registry.snapshot())
            .unwrap_or_default();
        if let Some(sink) = &config.sink {
            metrics.emit(&**sink);
        }
        let results = jobs
            .into_iter()
            .map(|cell| {
                let mut result = cell
                    .state
                    .into_inner()
                    .result
                    .expect("the pool only exits once every job has published");
                result.metrics = metrics.clone();
                result
            })
            .collect();
        (results, driver_out)
    }

    /// Builds batch `index`'s observer from the configured sink/registry,
    /// stamping a `batch = index` label so shared traces stay separable.
    fn observer_for(&self, index: usize) -> Option<ExecObserver> {
        let config = &self.config;
        let observer = match (&config.sink, &config.registry) {
            (None, None) => return None,
            (Some(sink), _) => ExecObserver::new(Arc::new(LabeledSink::new(
                sink.clone(),
                "batch",
                index as u64,
            ))),
            (None, Some(_)) => ExecObserver::metrics_only(),
        };
        let mut observer = observer
            .with_engine("serve")
            .with_bounds(config.n_total, config.k_abs_sum);
        if let Some(registry) = &config.registry {
            observer = observer.with_registry(registry.clone());
        }
        Some(observer)
    }
}

/// The in-flight pool, as seen by [`BatchServer::serve_with`]'s driver.
pub struct ServeSession<'s, 'a> {
    jobs: &'s [JobCell<'a>],
    cache: Option<&'s ShardedCachingStore<&'a dyn CoefficientStore>>,
    config: &'s ServeConfig,
}

impl<'s, 'a> ServeSession<'s, 'a> {
    /// Number of admitted batches.
    pub fn batches(&self) -> usize {
        self.jobs.len()
    }

    /// The handle for batch `index` (panics if out of range).
    pub fn handle(&self, index: usize) -> BatchHandle<'s, 'a> {
        BatchHandle {
            cell: &self.jobs[index],
            index,
        }
    }

    /// Handles for every admitted batch, in request order.
    pub fn handles(&self) -> Vec<BatchHandle<'s, 'a>> {
        (0..self.jobs.len()).map(|i| self.handle(i)).collect()
    }

    /// Whether every batch has published its final result.
    pub fn all_finished(&self) -> bool {
        self.jobs
            .iter()
            .all(|cell| cell.finished.load(Ordering::Acquire))
    }

    /// Applies a live data update atomically across the store and every
    /// in-flight executor.
    ///
    /// This is a stop-the-world barrier: it takes every job's slice lock
    /// in index order (workers hold at most one and never take a second,
    /// so the barrier cannot deadlock), then — with all executors paused —
    /// runs `write_store` (the caller's store mutation, e.g.
    /// `SharedStore::add_shared` per entry), invalidates the shared cache
    /// for the touched keys, and repairs each unfinished executor with
    /// [`ProgressiveExecutor::apply_update`]. Batches that already
    /// published a result are left untouched: their answer was final —
    /// and correct — for the database as of their finish.
    ///
    /// `entries` lists the changed coefficients as `(key, delta)`, e.g.
    /// from `batchbb_relation::cube::point_entries`.
    pub fn update(&self, entries: &[(CoeffKey, f64)], write_store: impl FnOnce()) {
        let mut guards: Vec<_> = self.jobs.iter().map(|cell| cell.state.lock()).collect();
        write_store();
        if let Some(cache) = self.cache {
            for (key, _) in entries {
                cache.invalidate(key);
            }
        }
        for (cell, state) in self.jobs.iter().zip(guards.iter_mut()) {
            if state.result.is_some() {
                continue;
            }
            for (key, delta) in entries {
                state.exec.apply_update(key, *delta);
            }
            let report = state
                .exec
                .degradation_report(self.config.n_total, self.config.k_abs_sum);
            publish_snapshot(cell, state, &report, false);
        }
    }
}

/// One pool worker: drain the own queue front, steal from victims' backs,
/// spin down once every job has published.
fn worker_loop(
    me: usize,
    jobs: &[JobCell<'_>],
    queues: &[Mutex<VecDeque<usize>>],
    active: &AtomicUsize,
    config: &ServeConfig,
) {
    loop {
        if active.load(Ordering::Acquire) == 0 {
            return;
        }
        match pop_job(me, queues) {
            Some(index) => {
                let finished = run_slice(&jobs[index], config, active);
                if !finished {
                    queues[me].lock().push_back(index);
                }
            }
            None => std::thread::yield_now(),
        }
    }
}

fn pop_job(me: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(index) = queues[me].lock().pop_front() {
        return Some(index);
    }
    for offset in 1..queues.len() {
        let victim = (me + offset) % queues.len();
        if let Some(index) = queues[victim].lock().pop_back() {
            return Some(index);
        }
    }
    None
}

/// Advances one batch by one scheduling slice. Returns whether the batch
/// has published its final result.
fn run_slice(cell: &JobCell<'_>, config: &ServeConfig, active: &AtomicUsize) -> bool {
    let mut state = cell.state.lock();
    if state.result.is_some() {
        return true;
    }
    if cell.cancelled.load(Ordering::Acquire) {
        let report = state
            .exec
            .degradation_report(config.n_total, config.k_abs_sum);
        finalize(cell, &mut state, BatchStatus::Cancelled, report, active);
        return true;
    }
    // The budget never drops below the deferral queue length, so a slice
    // that reaches the queue can always run one conclusive full pass —
    // the fairness rule that keeps budgeted drains convergent.
    let budget = config.slice_steps.max(state.exec.deferred_count());
    let status = state.exec.drain_with_faults_budgeted(&config.retry, budget);
    state.slices += 1;
    let report = state
        .exec
        .degradation_report(config.n_total, config.k_abs_sum);
    state.bound_history.push(report.worst_case_bound);
    match status {
        Some(status) => {
            finalize(cell, &mut state, status.into(), report, active);
            true
        }
        None => {
            publish_snapshot(cell, &state, &report, false);
            false
        }
    }
}

fn publish_snapshot(
    cell: &JobCell<'_>,
    state: &JobState<'_>,
    report: &DegradationReport,
    finished: bool,
) {
    *cell.snapshot.lock() = BatchSnapshot {
        estimates: report.estimates.clone(),
        retrieved: state.exec.retrieved(),
        remaining: state.exec.remaining(),
        deferred: state.exec.deferred_count(),
        worst_case_bound: report.worst_case_bound,
        expected_penalty: report.expected_penalty,
        slices: state.slices,
        finished,
    };
}

fn finalize(
    cell: &JobCell<'_>,
    state: &mut JobState<'_>,
    status: BatchStatus,
    report: DegradationReport,
    active: &AtomicUsize,
) {
    publish_snapshot(cell, state, &report, true);
    state.result = Some(BatchResult {
        status,
        retrieved_entries: state.exec.retrieved_entries(),
        slices: state.slices,
        bound_history: std::mem::take(&mut state.bound_history),
        report,
        // Stamped with the run-wide final snapshot once the pool exits.
        metrics: Default::default(),
    });
    cell.finished.store(true, Ordering::Release);
    active.fetch_sub(1, Ordering::AcqRel);
}
