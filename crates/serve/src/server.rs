//! The batch server: a fixed worker pool multiplexing many progressive
//! executors over one coefficient store, under per-batch SLO contracts.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use batchbb_core::{DegradationReport, ExecObserver, ProgressiveExecutor};
use batchbb_obs::{lifecycle, LabeledSink, Lifecycle, LifecycleRecorder, Phase};
use batchbb_storage::{
    shard_of, CoefficientStore, FaultStats, ShardRouter, ShardStats, ShardedCachingStore,
    VersionId, VersionView, VersionedStore,
};
use batchbb_tensor::CoeffKey;
use parking_lot::Mutex;

use crate::job::{JobCell, JobState};
use crate::sched::SliceQueue;
use crate::slo::{estimate_cost, SloObserver, SloOutcome};
use crate::{BatchHandle, BatchRequest, BatchResult, BatchSnapshot, BatchStatus, ServeConfig};

/// A thread-pool batch server.
///
/// Each admitted [`BatchRequest`] gets its own [`ProgressiveExecutor`];
/// a fixed pool of workers advances them in bounded *slices*
/// ([`ServeConfig::slice_steps`] retrievals at a time). Under the default
/// [`crate::SchedulerPolicy::MarginalValue`] policy, runnable batches are
/// ranked by certified bound-shrink-per-retrieval × priority, so the pool
/// always spends its next slice where it buys the most contract value;
/// [`crate::SchedulerPolicy::RoundRobin`] restores the earlier per-worker
/// queues with work stealing. Either way a huge batch cannot starve small
/// ones: after every slice the batch re-enters the queue and workers pick
/// whatever ranks next.
///
/// With [`ServeConfig::capacity`] declared, submission prices every
/// batch's [`crate::SloContract`] and rejects what does not fit
/// ([`SloOutcome::Rejected`]) instead of queueing unboundedly; deadline
/// expiry and load shedding finalize batches early *with their certified
/// Theorem-1/2 bounds* — degraded, never torn.
///
/// Determinism: scheduling decides only *interleaving*, never *content*.
/// Every batch walks its own importance order, and final estimates are
/// re-summed canonically once exact, so each batch's final answer is
/// bit-identical to running it alone — the concurrency tests assert this
/// against serial replays.
pub struct BatchServer {
    config: ServeConfig,
}

/// Run-wide shared state the slice path consults: consumed attempt ticks
/// (for shedding), the `slo.*` observer, and the parked-batch shelf.
struct PoolShared {
    consumed: AtomicU64,
    capacity: Option<u64>,
    slo: SloObserver,
    /// Batches shelved on a still-in-flight asynchronous prefetch. They
    /// are in neither the runnable queue nor any worker's hands; every
    /// worker sweeps this list and re-queues batches whose fetch landed
    /// (or that were cancelled, or whose fetch an update abandoned).
    parked: Mutex<Vec<usize>>,
}

/// What one scheduling slice concluded about a batch.
enum SliceOutcome {
    /// The batch published its final result.
    Finished,
    /// Inconclusive slice: re-enter the runnable queue with this refreshed
    /// marginal-value score.
    Requeue { score: f64, slices: usize },
    /// The batch is waiting on an in-flight asynchronous prefetch: shelve
    /// it instead of burning queue turns polling — the pool advances other
    /// batches over the fetch latency.
    Parked,
}

impl BatchServer {
    /// Creates a server with the given pool configuration.
    pub fn new(config: ServeConfig) -> Self {
        BatchServer { config }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves every request to completion and returns the results in
    /// request order.
    pub fn serve(
        &self,
        store: &dyn CoefficientStore,
        requests: &[BatchRequest<'_>],
    ) -> Vec<BatchResult> {
        self.serve_with(store, requests, |_| ()).0
    }

    /// Serves every request while running `driver` on the calling thread.
    ///
    /// The driver observes and steers the in-flight pool through a
    /// [`ServeSession`]: progressive snapshots and cancellation per batch
    /// ([`BatchHandle`]), and live data updates applied atomically across
    /// the store and every executor ([`ServeSession::update`]). The call
    /// returns once the driver has returned *and* every batch has
    /// published its final result.
    pub fn serve_with<R>(
        &self,
        store: &dyn CoefficientStore,
        requests: &[BatchRequest<'_>],
        driver: impl FnOnce(&ServeSession<'_, '_>) -> R,
    ) -> (Vec<BatchResult>, R) {
        let config = &self.config;
        let cache = config.share_cache.then(|| {
            let cache = ShardedCachingStore::with_shards(store, config.cache_shards);
            match config.cache_capacity {
                Some(cap) => cache.with_capacity(cap),
                None => cache,
            }
        });
        let eff: &dyn CoefficientStore = match &cache {
            Some(cache) => cache,
            None => store,
        };

        let shared = pool_shared(config);
        let jobs = self.admit_jobs(&shared, requests, |_| (eff, None));
        let driver_out = {
            let session = ServeSession {
                jobs: &jobs,
                cache: cache.as_ref(),
                store,
                config,
                versioned: None,
            };
            run_pool(config, &shared, &jobs, &session, driver)
        };
        (collect_results(config, jobs), driver_out)
    }

    /// Serves every request against a [`VersionedStore`] snapshot per
    /// batch and returns the results in request order.
    ///
    /// See [`BatchServer::serve_versioned_with`].
    pub fn serve_versioned(
        &self,
        store: &VersionedStore,
        requests: &[BatchRequest<'_>],
    ) -> Vec<BatchResult> {
        self.serve_versioned_with(store, requests, |_| ()).0
    }

    /// Serves every request under *snapshot isolation* while running
    /// `driver` on the calling thread.
    ///
    /// Each batch pins the store version current at its admission
    /// ([`VersionedStore::pin`]) and reads that immutable snapshot for its
    /// whole drain. [`ServeSession::update`] becomes a lock-free publish:
    /// it installs a new version without pausing, quiescing, or even
    /// touching any in-flight executor — in-flight batches keep answering
    /// against their pinned version (recorded in
    /// [`BatchResult::pinned_version`]) unless the driver opts them in to
    /// the newer data with [`ServeSession::advance_batch`].
    ///
    /// No shared read cache is layered on top in this mode: snapshot reads
    /// are in-memory hash lookups, and jobs pinned at different versions
    /// could not share one cache generation anyway (the version-keyed
    /// caches in `batchbb_storage` cover the disk-backed topologies).
    pub fn serve_versioned_with<R>(
        &self,
        store: &VersionedStore,
        requests: &[BatchRequest<'_>],
        driver: impl FnOnce(&ServeSession<'_, '_>) -> R,
    ) -> (Vec<BatchResult>, R) {
        let config = &self.config;
        let shared = pool_shared(config);
        let views: Vec<VersionView> = requests.iter().map(|_| store.pin()).collect();
        let jobs = self.admit_jobs(&shared, requests, |i| {
            (&views[i] as &dyn CoefficientStore, Some(views[i].version()))
        });
        let driver_out = {
            let session = ServeSession {
                jobs: &jobs,
                cache: None,
                store,
                config,
                versioned: Some(VersionedCtx {
                    store,
                    views: &views,
                }),
            };
            run_pool(config, &shared, &jobs, &session, driver)
        };
        (collect_results(config, jobs), driver_out)
    }

    /// Serves every request through a scatter-gather [`ShardRouter`] built
    /// from [`ServeConfig::shard_topology`] over `entries`.
    ///
    /// See [`BatchServer::serve_sharded_with`].
    ///
    /// # Panics
    ///
    /// Panics if no [`ServeConfig::shard_topology`] was configured.
    pub fn serve_sharded(
        &self,
        entries: &[(CoeffKey, f64)],
        requests: &[BatchRequest<'_>],
    ) -> ShardedRun {
        self.serve_sharded_with(entries, requests, |_| ())
    }

    /// Serves every request through a scatter-gather [`ShardRouter`],
    /// calling `prepare` on the freshly built router before any batch
    /// starts (the hook tests use to kill a shard deterministically).
    ///
    /// The router is built from [`ServeConfig::shard_topology`]:
    /// `entries` is partitioned across the shards by
    /// [`batchbb_storage::shard_of`], each shard goes behind its
    /// mock-network latency boundary, and — when the topology replicates —
    /// hedged reads race a replica against slow primaries. The configured
    /// [`ServeConfig::registry`] receives the per-shard
    /// `store.shard.{i}.*` counters and, with a tracer + sink configured,
    /// shard RPC spans share the batch lifecycles' clock.
    ///
    /// The shared read-through cache is forced **off** for the run: the
    /// router's per-shard RPC batches are the coalescing layer, and a
    /// cache on top would serve repeats from memory, hiding exactly the
    /// shard behavior this entry point exists to exercise. Batch results
    /// stay bit-identical to the single-store path — scatter-gather
    /// changes who answers a read, never the value.
    ///
    /// Shard failures surface as *bounded degradation*, never errors:
    /// keys a dead shard could not serve are deferred by each executor
    /// and certified in its `DegradationReport`; the returned
    /// [`ShardedRun::deferred_by_shard`] maps every deferred key back to
    /// the shard that owned it, naming the blast radius.
    ///
    /// # Panics
    ///
    /// Panics if no [`ServeConfig::shard_topology`] was configured.
    pub fn serve_sharded_with(
        &self,
        entries: &[(CoeffKey, f64)],
        requests: &[BatchRequest<'_>],
        prepare: impl FnOnce(&ShardRouter),
    ) -> ShardedRun {
        let topology = self
            .config
            .shard_topology
            .expect("serve_sharded requires ServeConfig::shard_topology");
        let tracing = match (&self.config.tracer, &self.config.sink) {
            (Some(tracer), Some(sink)) => Some((tracer.clone(), sink.clone())),
            _ => None,
        };
        let router = ShardRouter::with_instrumentation(
            topology.clients(entries.iter().copied()),
            topology.hedge(),
            self.config.registry.as_deref(),
            tracing,
        );
        prepare(&router);
        let mut config = self.config.clone();
        config.share_cache = false;
        let sharded = BatchServer { config };
        let (results, ()) = sharded.serve_with(&router, requests, |_| ());
        // Drain outstanding hedge obligations so the counters below are
        // final (a cancelled hedge may still sit queued after the last
        // batch publishes).
        router.quiesce();
        let shards = topology.shards();
        let mut deferred_by_shard = vec![Vec::new(); shards];
        for result in &results {
            for &(key, importance) in &result.report.deferred {
                deferred_by_shard[shard_of(&key, shards)].push((key, importance));
            }
        }
        ShardedRun {
            results,
            shard_stats: router.shard_stats(),
            deferred_by_shard,
        }
    }

    /// Builds one [`JobCell`] per request — executors constructed, and
    /// contracts priced, serially on the caller thread: importance scoring
    /// sees a quiescent store, admission sees requests in submission
    /// order, and no `Penalty` crosses a thread boundary. `store_for`
    /// hands each job its read store (the shared effective store, or the
    /// job's own pinned [`VersionView`]) plus the version it pins, if any.
    fn admit_jobs<'a>(
        &self,
        shared: &PoolShared,
        requests: &[BatchRequest<'a>],
        mut store_for: impl FnMut(usize) -> (&'a dyn CoefficientStore, Option<VersionId>),
    ) -> Vec<JobCell<'a>> {
        let config = &self.config;
        let mut committed: u64 = 0;
        requests
            .iter()
            .enumerate()
            .map(|(i, req)| {
                // The lifecycle starts *before* pricing so the Admitted
                // phase covers the whole admission decision.
                let batch_lifecycle = self.lifecycle_for(i);
                let (store, pinned) = store_for(i);
                let mut exec = ProgressiveExecutor::new(req.batch, req.penalty, store)
                    .with_prefetch_window(config.prefetch_window);
                let estimate = estimate_cost(&exec, &req.slo, config.k_abs_sum);
                if let Some(capacity) = config.capacity {
                    if committed.saturating_add(estimate.steps_to_target) > capacity {
                        shared.slo.on_rejected(i, &req.slo, &estimate, capacity);
                        return JobCell::rejected(
                            i,
                            exec,
                            config,
                            req.slo,
                            &estimate,
                            capacity,
                            pinned,
                            batch_lifecycle,
                        );
                    }
                }
                committed += estimate.steps_to_target;
                shared
                    .slo
                    .on_admitted(i, &req.slo, &estimate, config.capacity);
                if let Some(mut observer) = self.observer_for(i) {
                    if let Some(batch_lifecycle) = &batch_lifecycle {
                        observer = observer.with_lifecycle(batch_lifecycle.clone());
                    }
                    exec = exec.with_observer(observer);
                }
                let cell = JobCell::new(i, exec, config, req.slo, pinned, batch_lifecycle);
                cell.enter_phase(Phase::Queued);
                cell
            })
            .collect()
    }

    /// Builds batch `index`'s phase lifecycle, or `None` unless both a
    /// tracer and a sink are configured. The recorder flushes into the
    /// raw (unlabelled) sink — its spans carry an explicit `batch` field.
    fn lifecycle_for(&self, index: usize) -> Option<Lifecycle> {
        let (tracer, sink) = match (&self.config.tracer, &self.config.sink) {
            (Some(tracer), Some(sink)) => (tracer, sink),
            _ => return None,
        };
        Some(lifecycle(LifecycleRecorder::begin(
            tracer.clone(),
            sink.clone(),
            index as u64,
        )))
    }

    /// Builds batch `index`'s observer from the configured sink/registry,
    /// stamping a `batch = index` label so shared traces stay separable.
    fn observer_for(&self, index: usize) -> Option<ExecObserver> {
        let config = &self.config;
        let observer = match (&config.sink, &config.registry) {
            (None, None) => return None,
            (Some(sink), _) => ExecObserver::new(Arc::new(LabeledSink::new(
                sink.clone(),
                "batch",
                index as u64,
            ))),
            (None, Some(_)) => ExecObserver::metrics_only(),
        };
        let mut observer = observer
            .with_engine("serve")
            .with_bounds(config.n_total, config.k_abs_sum);
        if let Some(registry) = &config.registry {
            observer = observer.with_registry(registry.clone());
        }
        Some(observer)
    }
}

/// Fresh run-wide shared state for one serve call.
fn pool_shared(config: &ServeConfig) -> PoolShared {
    PoolShared {
        consumed: AtomicU64::new(0),
        capacity: config.capacity,
        slo: SloObserver::new(config.sink.clone(), config.registry.clone()),
        parked: Mutex::new(Vec::new()),
    }
}

/// Runs the worker pool over `jobs` while `driver` runs on the calling
/// thread; returns once the driver has returned *and* every job has
/// published its final result.
fn run_pool<'s, 'a, R>(
    config: &ServeConfig,
    shared: &PoolShared,
    jobs: &'s [JobCell<'a>],
    session: &ServeSession<'s, 'a>,
    driver: impl FnOnce(&ServeSession<'s, 'a>) -> R,
) -> R {
    let admitted: Vec<&JobCell<'_>> = jobs
        .iter()
        .filter(|cell| !cell.finished.load(Ordering::Acquire))
        .collect();
    let active = AtomicUsize::new(admitted.len());
    shared.slo.set_queue_depth(admitted.len() as u64);
    let queue = SliceQueue::new(
        config.scheduler,
        config.workers,
        admitted.iter().map(|cell| {
            let snapshot = cell.snapshot.lock();
            let per_step =
                snapshot.worst_case_bound / (snapshot.remaining + snapshot.deferred).max(1) as f64;
            (cell.index, cell.contract.priority_weight() * per_step)
        }),
    );
    std::thread::scope(|scope| {
        for me in 0..config.workers {
            let queue = &queue;
            let active = &active;
            scope.spawn(move || worker_loop(me, jobs, queue, active, config, shared));
        }
        driver(session)
    })
}

/// Extracts the final results in request order, stamping every one with a
/// single run-wide metrics snapshot: a per-batch snapshot at finalize time
/// would capture a racy prefix of the shared registry. When a trace sink
/// is configured the snapshot is also appended to the trace as `metrics.*`
/// events, so metrics and events land in one replayable file.
fn collect_results(config: &ServeConfig, jobs: Vec<JobCell<'_>>) -> Vec<BatchResult> {
    let metrics = config
        .registry
        .as_ref()
        .map(|registry| registry.snapshot())
        .unwrap_or_default();
    if let Some(sink) = &config.sink {
        metrics.emit(&**sink);
    }
    jobs.into_iter()
        .map(|cell| {
            let mut result = cell
                .state
                .into_inner()
                .result
                .expect("the pool only exits once every job has published");
            result.metrics = metrics.clone();
            result
        })
        .collect()
}

/// What [`BatchServer::serve_sharded`] returns: the per-batch results
/// plus the shard-level account of the run.
pub struct ShardedRun {
    /// Per-batch results, in request order — bit-identical to the
    /// single-store path on a healthy topology.
    pub results: Vec<BatchResult>,
    /// Per-shard RPC / hedge / failover counters, indexed by shard.
    pub shard_stats: Vec<ShardStats>,
    /// Every deferred `(key, importance)` across all batches, attributed
    /// to the shard owning the key: the per-shard blast radius of a
    /// failure, reconciling with each batch's `DegradationReport`.
    pub deferred_by_shard: Vec<Vec<(CoeffKey, f64)>>,
}

/// The versioned half of a session: the published store plus each job's
/// pinned read view (index-aligned with `jobs`).
struct VersionedCtx<'s, 'a> {
    store: &'a VersionedStore,
    views: &'s [VersionView],
}

impl VersionedCtx<'_, '_> {
    /// Compacts the version log to the oldest version any batch's view
    /// still pins ([`VersionedStore::compact`]). Finished batches freeze
    /// their view at their final pinned version, so every
    /// `BatchResult::pinned_version` stays retrievable (`pin_at`) for the
    /// life of the session — while a long-serving session whose batches
    /// keep advancing keeps the log bounded instead of accreting one
    /// delta per publish forever.
    fn compact(&self) {
        if let Some(oldest) = self.views.iter().map(|view| view.version()).min() {
            self.store.compact(oldest);
        }
    }
}

/// The in-flight pool, as seen by [`BatchServer::serve_with`]'s (or
/// [`BatchServer::serve_versioned_with`]'s) driver.
pub struct ServeSession<'s, 'a> {
    jobs: &'s [JobCell<'a>],
    cache: Option<&'s ShardedCachingStore<&'a dyn CoefficientStore>>,
    store: &'a dyn CoefficientStore,
    config: &'s ServeConfig,
    versioned: Option<VersionedCtx<'s, 'a>>,
}

impl<'s, 'a> ServeSession<'s, 'a> {
    /// Number of submitted batches (admitted and rejected alike — a
    /// rejected batch has a handle whose snapshot is final from the
    /// start).
    pub fn batches(&self) -> usize {
        self.jobs.len()
    }

    /// The handle for batch `index` (panics if out of range).
    pub fn handle(&self, index: usize) -> BatchHandle<'s, 'a> {
        BatchHandle {
            cell: &self.jobs[index],
            index,
        }
    }

    /// Handles for every submitted batch, in request order.
    pub fn handles(&self) -> Vec<BatchHandle<'s, 'a>> {
        (0..self.jobs.len()).map(|i| self.handle(i)).collect()
    }

    /// Whether every batch has published its final result.
    pub fn all_finished(&self) -> bool {
        self.jobs
            .iter()
            .all(|cell| cell.finished.load(Ordering::Acquire))
    }

    /// Applies a live data update.
    ///
    /// **Versioned sessions** ([`BatchServer::serve_versioned_with`])
    /// publish the update as a new store version
    /// ([`VersionedStore::publish`]) with *zero reader coordination*: no
    /// slice lock is taken, no fetch path quiesced, no cache invalidated.
    /// Every in-flight executor keeps reading the immutable snapshot it
    /// pinned at admission — there is nothing to tear — and stays on it
    /// until the driver opts it in via [`ServeSession::advance_batch`].
    /// `write_store` still runs (after the publish) for signature parity,
    /// e.g. to mirror the update into an external system.
    ///
    /// **Unversioned sessions** fall back to the stop-the-world barrier:
    /// take every job's slice lock in index order (workers hold at most
    /// one and never take a second, so the barrier cannot deadlock), then
    /// — with all executors paused — run `write_store` (the caller's store
    /// mutation, e.g. `SharedStore::add_shared` per entry), invalidate the
    /// shared cache for the touched keys, and repair each unfinished
    /// executor with [`ProgressiveExecutor::apply_update`]. Batches that
    /// already published a result are left untouched in either mode:
    /// their answer was final — and correct — for the database (version)
    /// as of their finish.
    ///
    /// `entries` lists the changed coefficients as `(key, delta)`, e.g.
    /// from `batchbb_relation::cube::point_entries` or the batched
    /// `batchbb_relation::cube::batch_point_entries`.
    pub fn update(&self, entries: &[(CoeffKey, f64)], write_store: impl FnOnce()) {
        if let Some(versioned) = &self.versioned {
            versioned.store.publish(entries);
            write_store();
            versioned.compact();
            return;
        }
        let mut guards: Vec<_> = self.jobs.iter().map(|cell| cell.state.lock()).collect();
        // Quiesce the asynchronous fetch path before mutating: with every
        // slice lock held no executor can submit a new fetch, and the
        // barrier waits out reads already in flight — so no pre-update
        // read races `write_store`. Parked executors may now hold *ready*
        // completions carrying pre-update values; `apply_update` below
        // abandons any pending fetch that covers an updated key, so stale
        // values for touched keys are re-fetched, and untouched keys'
        // pre-update values are still correct.
        match self.cache {
            Some(cache) => cache.quiesce(),
            None => self.store.quiesce(),
        }
        write_store();
        if let Some(cache) = self.cache {
            for (key, _) in entries {
                cache.invalidate(key);
            }
        }
        for (cell, state) in self.jobs.iter().zip(guards.iter_mut()) {
            if state.result.is_some() {
                continue;
            }
            // With every slice lock held no batch is Executing; bracket
            // the repair and restore the phase the barrier interrupted
            // (Queued or Parked).
            let interrupted = cell.lifecycle.as_ref().map(|lifecycle| {
                let mut recorder = lifecycle.lock().expect("lifecycle poisoned");
                let prev = recorder.phase();
                recorder.transition(Phase::Repair);
                prev
            });
            for (key, delta) in entries {
                state.exec.apply_update(key, *delta);
            }
            let report = state
                .exec
                .degradation_report(self.config.n_total, self.config.k_abs_sum);
            publish_snapshot(cell, state, &report, false);
            if let Some(prev) = interrupted {
                cell.enter_phase(prev);
            }
        }
    }

    /// The latest published store version, or `None` for unversioned
    /// sessions.
    pub fn current_version(&self) -> Option<VersionId> {
        self.versioned
            .as_ref()
            .map(|versioned| versioned.store.current_version())
    }

    /// The store version batch `index` currently reads, or `None` for
    /// unversioned sessions (panics if out of range).
    pub fn pinned_version(&self, index: usize) -> Option<VersionId> {
        self.versioned
            .as_ref()
            .map(|versioned| versioned.views[index].version())
    }

    /// Opts batch `index` in to the latest published store version.
    ///
    /// Takes only that batch's slice lock (never another's), re-pins its
    /// view to the current version, and repairs the executor with
    /// [`ProgressiveExecutor::advance_version`] against the exact
    /// concatenated delta between the two versions — so its estimates and
    /// certified bounds are what they would have been had it read the new
    /// version from the start. The order matters and is handled here: the
    /// view advances *first*, so every fresh read (including the re-fetch
    /// of an abandoned prefetch) sees the new version, and the repair then
    /// patches exactly what the executor had already consumed of the old
    /// one.
    ///
    /// Returns the version the batch now reads, or `None` if the session
    /// is unversioned or the batch has already published its final result
    /// (its answer stays certified for its pinned version). Panics if
    /// `index` is out of range.
    pub fn advance_batch(&self, index: usize) -> Option<VersionId> {
        let versioned = self.versioned.as_ref()?;
        let cell = &self.jobs[index];
        let mut state = cell.state.lock();
        if state.result.is_some() {
            return None;
        }
        let interrupted = cell.lifecycle.as_ref().map(|lifecycle| {
            let mut recorder = lifecycle.lock().expect("lifecycle poisoned");
            let prev = recorder.phase();
            recorder.transition(Phase::Repair);
            prev
        });
        let (id, delta) = versioned.views[index].advance_to_current();
        state.exec.advance_version(&delta);
        state.pinned_version = Some(id);
        let report = state
            .exec
            .degradation_report(self.config.n_total, self.config.k_abs_sum);
        publish_snapshot(cell, &state, &report, false);
        if let Some(prev) = interrupted {
            cell.enter_phase(prev);
        }
        drop(state);
        versioned.compact();
        Some(id)
    }
}

/// One pool worker: sweep the parked shelf for landed fetches, pop the
/// highest-ranked runnable batch, advance it one slice, re-queue it with a
/// refreshed score if inconclusive (or shelve it if it parked on an
/// in-flight fetch), spin down once every job has published.
fn worker_loop(
    me: usize,
    jobs: &[JobCell<'_>],
    queue: &SliceQueue,
    active: &AtomicUsize,
    config: &ServeConfig,
    shared: &PoolShared,
) {
    loop {
        if active.load(Ordering::Acquire) == 0 {
            return;
        }
        let resumed = resume_parked(me, jobs, queue, shared);
        match queue.pop(me) {
            Some(index) => match run_slice(&jobs[index], config, active, shared) {
                SliceOutcome::Finished => {}
                SliceOutcome::Requeue { score, slices } => queue.push(me, index, score, slices),
                SliceOutcome::Parked => shared.parked.lock().push(index),
            },
            None if resumed => {}
            None => {
                // Nothing runnable. If batches are parked the pool is
                // I/O-bound: sleep a beat instead of spinning the sweep.
                if shared.parked.lock().is_empty() {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            }
        }
    }
}

/// Re-queues every parked batch whose wait is over: its in-flight fetch
/// landed, an update abandoned the fetch, or it was cancelled. Returns
/// whether anything was resumed.
///
/// Lock discipline: slice locks are only `try_lock`ed — a held lock means
/// another worker or the update barrier owns the batch right now, and the
/// next sweep will catch up; blocking here could deadlock against the
/// barrier (which takes *all* slice locks while a sweep holds the shelf).
fn resume_parked(me: usize, jobs: &[JobCell<'_>], queue: &SliceQueue, shared: &PoolShared) -> bool {
    let mut parked = shared.parked.lock();
    if parked.is_empty() {
        return false;
    }
    let mut resumed = false;
    let mut i = 0;
    while i < parked.len() {
        let cell = &jobs[parked[i]];
        let wake = cell.cancelled.load(Ordering::Acquire)
            || match cell.state.try_lock() {
                Some(state) => !state.exec.fetch_pending() || state.exec.fetch_ready(),
                None => false,
            };
        if !wake {
            i += 1;
            continue;
        }
        let index = parked.swap_remove(i);
        cell.enter_phase(Phase::Queued);
        let snapshot = cell.snapshot.lock();
        let per_step =
            snapshot.worst_case_bound / (snapshot.remaining + snapshot.deferred).max(1) as f64;
        let score = cell.contract.priority_weight() * per_step;
        let slices = snapshot.slices;
        drop(snapshot);
        queue.push(me, index, score, slices);
        resumed = true;
    }
    resumed
}

/// Simulated ticks a batch has consumed: one per store attempt plus the
/// backoff its retries charged — the clock SLO deadlines run on.
fn elapsed_ticks(fault: &FaultStats) -> u64 {
    fault.attempts + fault.backoff_ticks
}

/// Advances one batch by one scheduling slice and says what to do with it
/// next: drop it (final result published), re-queue it, or shelve it on a
/// still-in-flight asynchronous prefetch.
fn run_slice(
    cell: &JobCell<'_>,
    config: &ServeConfig,
    active: &AtomicUsize,
    shared: &PoolShared,
) -> SliceOutcome {
    let mut state = cell.state.lock();
    if state.result.is_some() {
        return SliceOutcome::Finished;
    }
    // Phase transitions happen while the slice lock is held, so during an
    // update barrier (all locks held) a batch's phase is never Executing.
    cell.enter_phase(Phase::Executing);
    if cell.cancelled.load(Ordering::Acquire) {
        let report = state
            .exec
            .degradation_report(config.n_total, config.k_abs_sum);
        finalize(
            cell,
            &mut state,
            BatchStatus::Cancelled,
            report,
            active,
            shared,
        );
        return SliceOutcome::Finished;
    }
    let fault = state.exec.fault_stats();
    let elapsed = elapsed_ticks(&fault);
    // Contract checks come before the drain so an expired or shed batch
    // never spends another attempt; both paths finalize with the current
    // certified bounds.
    if let Some(deadline) = cell.contract.deadline_ticks {
        if elapsed >= deadline {
            let report = state
                .exec
                .degradation_report(config.n_total, config.k_abs_sum);
            state.bound_history.push(report.worst_case_bound);
            finalize(
                cell,
                &mut state,
                BatchStatus::DeadlineExpired,
                report,
                active,
                shared,
            );
            return SliceOutcome::Finished;
        }
    }
    if let Some(capacity) = shared.capacity {
        // Strict ">": with fault-free stores actual consumption equals
        // the admitted estimates, which fit the capacity by construction,
        // so healthy runs never shed — shedding is the backstop for
        // fault-inflated costs only.
        if shared.consumed.load(Ordering::Relaxed) > capacity {
            let report = state
                .exec
                .degradation_report(config.n_total, config.k_abs_sum);
            state.bound_history.push(report.worst_case_bound);
            finalize(cell, &mut state, BatchStatus::Shed, report, active, shared);
            return SliceOutcome::Finished;
        }
    }
    // The budget never drops below the deferral queue length, so a slice
    // that reaches the queue can always run one conclusive full pass —
    // the fairness rule that keeps budgeted drains convergent. A deadline
    // additionally caps the slice (and, below, the per-retrieval retry
    // policy) to the tick budget left, so one slice cannot overshoot the
    // contract by more than a bounded deferral pass.
    let deferred = state.exec.deferred_count();
    let mut budget = config.slice_steps.max(deferred);
    let mut policy = config.retry.clone();
    if config.adaptive_retry {
        let failures = fault.transient_failures + fault.permanent_failures;
        if fault.attempts >= 32 {
            policy = policy.adapted(failures as f64 / fault.attempts as f64);
        }
    }
    if let Some(deadline) = cell.contract.deadline_ticks {
        let remaining = deadline - elapsed; // > 0: the expiry check passed
        policy = policy.with_tick_budget(remaining);
        let remaining_steps = usize::try_from(remaining).unwrap_or(usize::MAX);
        budget = budget.min(remaining_steps.max(deferred)).max(1);
    }
    let status = if cell.contract.target_bound.is_finite() {
        state.exec.drain_with_faults_budgeted_to_bound(
            &policy,
            budget,
            cell.contract.target_bound,
            config.k_abs_sum,
        )
    } else {
        state.exec.drain_with_faults_budgeted(&policy, budget)
    };
    state.slices += 1;
    let after = state.exec.fault_stats();
    shared
        .consumed
        .fetch_add(after.attempts - fault.attempts, Ordering::Relaxed);
    let report = state
        .exec
        .degradation_report(config.n_total, config.k_abs_sum);
    state.bound_history.push(report.worst_case_bound);
    match status {
        Some(status) => {
            finalize(cell, &mut state, status.into(), report, active, shared);
            SliceOutcome::Finished
        }
        None => {
            publish_snapshot(cell, &state, &report, false);
            // An inconclusive drain either ran out of slice budget
            // (re-queue and compete on marginal value) or parked on an
            // asynchronous prefetch still in flight (shelve it — unless
            // the fetch landed while we were reporting, in which case it
            // is runnable right now).
            if state.exec.fetch_pending() && !state.exec.fetch_ready() {
                cell.enter_phase(Phase::Parked);
                return SliceOutcome::Parked;
            }
            let per_step = report.worst_case_bound
                / (state.exec.remaining() + state.exec.deferred_count()).max(1) as f64;
            cell.enter_phase(Phase::Queued);
            SliceOutcome::Requeue {
                score: cell.contract.priority_weight() * per_step,
                slices: state.slices,
            }
        }
    }
}

fn publish_snapshot(
    cell: &JobCell<'_>,
    state: &JobState<'_>,
    report: &DegradationReport,
    finished: bool,
) {
    *cell.snapshot.lock() = BatchSnapshot {
        estimates: report.estimates.clone(),
        retrieved: state.exec.retrieved(),
        remaining: state.exec.remaining(),
        deferred: state.exec.deferred_count(),
        worst_case_bound: report.worst_case_bound,
        expected_penalty: report.expected_penalty,
        slices: state.slices,
        finished,
    };
}

fn finalize(
    cell: &JobCell<'_>,
    state: &mut JobState<'_>,
    status: BatchStatus,
    report: DegradationReport,
    active: &AtomicUsize,
    shared: &PoolShared,
) {
    cell.enter_phase(Phase::Finalize);
    publish_snapshot(cell, state, &report, true);
    // The outcome is the certificate's verdict, not the status's: any
    // terminal state whose final certified bound meets the target — exact
    // or not, expired or not — honored the contract.
    let slo = if report.worst_case_bound <= cell.contract.target_bound {
        SloOutcome::Met
    } else {
        SloOutcome::DegradedAtBound
    };
    shared.slo.on_outcome(
        cell.index,
        &cell.contract,
        &slo,
        status.label(),
        report.worst_case_bound,
        elapsed_ticks(&report.fault),
    );
    state.result = Some(BatchResult {
        status,
        slo,
        retrieved_entries: state.exec.retrieved_entries(),
        slices: state.slices,
        bound_history: std::mem::take(&mut state.bound_history),
        report,
        // Stamped with the run-wide final metrics snapshot once the pool
        // exits.
        metrics: Default::default(),
        pinned_version: state.pinned_version,
    });
    cell.finished.store(true, Ordering::Release);
    cell.flush_lifecycle();
    let left = active.fetch_sub(1, Ordering::AcqRel) - 1;
    shared.slo.set_queue_depth(left as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchbb_core::{BatchQueries, ProgressiveExecutor};
    use batchbb_penalty::Sse;
    use batchbb_query::{HyperRect, LinearStrategy, RangeSum, WaveletStrategy};
    use batchbb_relation::{Attribute, FrequencyDistribution, Schema};
    use batchbb_wavelet::Wavelet;

    use crate::{BatchRequest, ServeConfig};

    /// A 32×32 dataset on a versioned store, plus `nb` two-query batches
    /// whose master lists are hundreds of coefficients long — long enough
    /// that a driver can pause them all mid-drain before any finishes.
    fn fixture(nb: usize) -> (VersionedStore, Vec<BatchQueries>, usize, f64) {
        let schema = Schema::new(vec![
            Attribute::new("x", 0.0, 32.0, 5),
            Attribute::new("y", 0.0, 32.0, 5),
        ])
        .unwrap();
        let mut dfd = FrequencyDistribution::new(schema);
        for i in 0..32 {
            for j in 0..32 {
                let w = ((i * 5 + j * 11) % 7) as f64;
                if w != 0.0 {
                    dfd.insert_binned(&[i, j], w);
                }
            }
        }
        let strategy = WaveletStrategy::new(Wavelet::Db4);
        let store = VersionedStore::from_entries(strategy.transform_data(dfd.tensor()));
        let shape = dfd.schema().domain();
        let batches = (0..nb)
            .map(|b| {
                let lo = b % 8;
                BatchQueries::rewrite(
                    &strategy,
                    vec![
                        RangeSum::count(HyperRect::new(vec![lo, 0], vec![31, 31])),
                        RangeSum::count(HyperRect::new(vec![0, lo], vec![30, 30])),
                    ],
                    &shape,
                )
                .unwrap()
            })
            .collect();
        let k = store.abs_sum();
        (store, batches, 1024, k)
    }

    /// The tentpole acceptance check: with eight batches paused mid-drain
    /// — the driver holds *every* slice lock, exactly the locks the old
    /// barrier needed — a versioned `update` still completes. If `update`
    /// took any batch's slice lock this test would deadlock on the spot.
    ///
    /// One round-robin worker makes the pause easy to land: each batch
    /// needs hundreds of one-step slices dealt evenly, so none finishes
    /// until thousands of slices have run, and the worker blocks on a
    /// driver-held lock within eight pops — freezing the whole pool
    /// mid-drain. The driver can still lose the race outright when the OS
    /// parks its thread for the entire drain (seen under heavily loaded
    /// parallel test runs), so a lost race skips the asserts and the whole
    /// serve is retried; the lock-freedom property is exercised on the
    /// first attempt whose freeze lands.
    #[test]
    fn versioned_update_completes_while_slice_locks_are_held() {
        let (store, batches, n_total, k) = fixture(8);
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(
            ServeConfig::new(n_total, k)
                .workers(1)
                .slice_steps(1)
                .scheduler(crate::SchedulerPolicy::RoundRobin),
        );
        let key = CoeffKey::new(&[0, 0]);
        for _ in 0..50 {
            let (results, frozen_at) = server.serve_versioned_with(&store, &requests, |session| {
                let guards: Vec<_> = session.jobs.iter().map(|cell| cell.state.lock()).collect();
                if guards.iter().any(|state| state.result.is_some()) {
                    return None; // worker outran us; retry the whole serve
                }
                let v0 = session.current_version().unwrap();
                session.update(&[(key, 3.5)], || ());
                let v1 = session.current_version().unwrap();
                assert_eq!(v1.as_u64(), v0.as_u64() + 1, "update published a version");
                for i in 0..session.batches() {
                    assert_eq!(session.pinned_version(i), Some(v0), "readers stay pinned");
                }
                Some(v0)
            });
            if let Some(v0) = frozen_at {
                for result in &results {
                    assert_eq!(result.status, BatchStatus::Exact);
                    assert_eq!(result.pinned_version, Some(v0));
                }
                return;
            }
        }
        panic!("the pool never froze mid-drain in 50 attempts");
    }

    /// Opting a batch forward mid-drain finalizes it bit-identically to a
    /// fresh serial run against the version it advanced to; batches that
    /// finished first keep answers bit-identical to their pinned snapshot.
    #[test]
    fn advance_batch_agrees_with_restart_on_the_new_version() {
        let (store, batches, n_total, k) = fixture(3);
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(ServeConfig::new(n_total, k).workers(2).slice_steps(2));
        let entries = vec![
            (CoeffKey::new(&[0, 0]), 2.5),
            (CoeffKey::new(&[1, 3]), -1.25),
            (CoeffKey::new(&[2, 2]), 0.5),
        ];
        let (results, (v0, v1)) = server.serve_versioned_with(&store, &requests, |session| {
            let v0 = session.current_version().unwrap();
            session.update(&entries, || ());
            let v1 = session.current_version().unwrap();
            for i in 0..session.batches() {
                if let Some(id) = session.advance_batch(i) {
                    assert_eq!(id, v1);
                }
            }
            (v0, v1)
        });
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.status, BatchStatus::Exact);
            let pinned = result
                .pinned_version
                .expect("versioned runs pin every batch");
            let view = store.pin_at(pinned).expect("pinned versions are retained");
            let mut serial = ProgressiveExecutor::new(&batches[i], &Sse, &view);
            serial.run_to_end();
            assert_eq!(
                result.estimates(),
                serial.estimates(),
                "batch {i} (pinned {pinned}) must replay bit-for-bit"
            );
            assert!(pinned == v0 || pinned == v1);
        }
    }
}
