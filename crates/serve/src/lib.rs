//! Concurrent batch serving for progressive range-sum evaluation.
//!
//! The paper evaluates one batch of range-sum queries progressively; a
//! server evaluates *many batches at once* against one coefficient store.
//! This crate supplies that layer:
//!
//! * [`BatchServer`] — a fixed worker pool that advances one
//!   [`batchbb_core::ProgressiveExecutor`] per admitted batch in bounded
//!   *slices*; the default [`SchedulerPolicy::MarginalValue`] policy ranks
//!   runnable batches by certified bound-shrink-per-retrieval × priority
//!   (with [`SchedulerPolicy::RoundRobin`] as the fair, contract-blind
//!   alternative), and either way a huge batch cannot starve small ones;
//! * SLO contracts ([`SloContract`]) — per-batch target bound ε, deadline,
//!   and priority, attached via [`BatchRequest::with_slo`]. With
//!   [`ServeConfig::capacity`] declared, admission control prices each
//!   contract against capacity ([`AdmissionEstimate`]) and rejects what
//!   cannot fit; overload, deadlines, and faults degrade batches to their
//!   *certified* Theorem-1/2 bounds, and every result carries an explicit
//!   [`SloOutcome`] (Met / DegradedAtBound / Rejected) — never a torn or
//!   uncertified answer;
//! * [`BatchHandle`] — per-batch progressive snapshots
//!   ([`BatchSnapshot`]) and cooperative cancellation while the pool
//!   runs, reachable from the driver closure of
//!   [`BatchServer::serve_with`];
//! * [`ServeSession::update`] — live data updates. Against a plain store
//!   they are applied atomically across the store, the shared cache, and
//!   every in-flight executor (a stop-the-world barrier). Against a
//!   [`batchbb_storage::VersionedStore`]
//!   ([`BatchServer::serve_versioned_with`]) the update is *published* as
//!   a new immutable snapshot version with zero reader coordination: each
//!   batch keeps answering for the version it pinned at admission
//!   ([`BatchResult::pinned_version`]) unless the driver opts it forward
//!   with [`ServeSession::advance_batch`], which repairs that one batch's
//!   estimates and certified bounds against the exact inter-version
//!   delta;
//! * cross-batch I/O sharing — with [`ServeConfig::share_cache`] (the
//!   default) all batches read through one
//!   [`batchbb_storage::ShardedCachingStore`], so coefficients needed by
//!   several batches are fetched from the physical store exactly once;
//! * observability — with a sink/registry configured, each batch's
//!   `exec.*` events carry a `batch = <id>` label
//!   ([`batchbb_obs::LabeledSink`]), all metrics land in one shared
//!   `MetricsRegistry`, every [`BatchResult`] carries the run's final
//!   [`batchbb_obs::MetricsSnapshot`], and that snapshot is appended to
//!   the trace as `metrics.*` events so metrics and events share one
//!   file. For high-throughput serving, wrap the sink in a
//!   [`batchbb_obs::BoundedSink`] so slow trace I/O can never block the
//!   worker pool (overflow drops-and-counts instead).
//!
//! # Determinism contract
//!
//! Scheduling decides only *interleaving*, never *content*: each batch
//! follows its own penalty-driven importance order and finalizes with the
//! canonical re-summation, so its final estimates are **bit-identical**
//! to running the same batch alone against the same store state — the
//! workspace's concurrency tests replay every served batch serially and
//! compare with `==`, not a tolerance. Faults are handled per batch by
//! the retry/deferral path; a batch that cannot finish exactly publishes
//! the same penalty-bounded [`batchbb_core::DegradationReport`] contract
//! it would serially.
//!
//! # Example
//!
//! ```
//! use batchbb_core::BatchQueries;
//! use batchbb_penalty::Sse;
//! use batchbb_query::{HyperRect, LinearStrategy, RangeSum, WaveletStrategy};
//! use batchbb_relation::{Attribute, FrequencyDistribution, Schema};
//! use batchbb_serve::{BatchRequest, BatchServer, BatchStatus, ServeConfig};
//! use batchbb_storage::{CoefficientStore, MemoryStore};
//! use batchbb_wavelet::Wavelet;
//!
//! // A tiny 8×8 dataset and its wavelet-transformed store.
//! let schema = Schema::new(vec![
//!     Attribute::new("x", 0.0, 8.0, 3),
//!     Attribute::new("y", 0.0, 8.0, 3),
//! ])
//! .unwrap();
//! let mut dfd = FrequencyDistribution::new(schema);
//! for i in 0..8 {
//!     dfd.insert_binned(&[i, i], 1.0);
//! }
//! let strategy = WaveletStrategy::new(Wavelet::Haar);
//! let store = MemoryStore::from_entries(strategy.transform_data(dfd.tensor()));
//! let shape = dfd.schema().domain();
//!
//! // Two single-query batches served concurrently on a 2-worker pool.
//! let q1 = vec![RangeSum::count(HyperRect::new(vec![0, 0], vec![3, 3]))];
//! let q2 = vec![RangeSum::count(HyperRect::new(vec![0, 0], vec![7, 7]))];
//! let b1 = BatchQueries::rewrite(&strategy, q1, &shape).unwrap();
//! let b2 = BatchQueries::rewrite(&strategy, q2, &shape).unwrap();
//!
//! let k = store.abs_sum();
//! let server = BatchServer::new(ServeConfig::new(64, k).workers(2).slice_steps(4));
//! let results = server.serve(&store, &[BatchRequest::new(&b1, &Sse), BatchRequest::new(&b2, &Sse)]);
//! assert_eq!(results[0].status, BatchStatus::Exact);
//! assert!((results[0].estimates()[0] - 4.0).abs() < 1e-9);
//! assert!((results[1].estimates()[0] - 8.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod config;
mod job;
mod sched;
mod server;
mod slo;

pub use config::{BatchRequest, ServeConfig};
pub use job::{BatchHandle, BatchResult, BatchSnapshot, BatchStatus};
pub use sched::SchedulerPolicy;
pub use server::{BatchServer, ServeSession, ShardedRun};
pub use slo::{AdmissionEstimate, SloContract, SloOutcome};

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use batchbb_core::{BatchQueries, DrainStatus, ProgressiveExecutor};
    use batchbb_obs::{jsonl, MemorySink, MetricsRegistry};
    use batchbb_penalty::{DiagonalQuadratic, Sse};
    use batchbb_query::{HyperRect, LinearStrategy, RangeSum, WaveletStrategy};
    use batchbb_relation::{Attribute, FrequencyDistribution, Schema};
    use batchbb_storage::{CoefficientStore, MemoryStore, RetryPolicy};
    use batchbb_wavelet::Wavelet;

    use super::*;

    fn fixture() -> (MemoryStore, Vec<BatchQueries>, usize, f64) {
        let schema = Schema::new(vec![
            Attribute::new("x", 0.0, 16.0, 4),
            Attribute::new("y", 0.0, 16.0, 4),
        ])
        .unwrap();
        let mut dfd = FrequencyDistribution::new(schema);
        for i in 0..16 {
            for j in 0..16 {
                let w = ((i * 7 + j * 3) % 5) as f64;
                if w != 0.0 {
                    dfd.insert_binned(&[i, j], w);
                }
            }
        }
        let strategy = WaveletStrategy::new(Wavelet::Db4);
        let store = MemoryStore::from_entries(strategy.transform_data(dfd.tensor()));
        let shape = dfd.schema().domain();
        let batches = vec![
            BatchQueries::rewrite(
                &strategy,
                vec![
                    RangeSum::count(HyperRect::new(vec![0, 0], vec![7, 7])),
                    RangeSum::count(HyperRect::new(vec![8, 0], vec![15, 15])),
                ],
                &shape,
            )
            .unwrap(),
            BatchQueries::rewrite(
                &strategy,
                vec![RangeSum::sum(HyperRect::new(vec![2, 3], vec![12, 14]), 1)],
                &shape,
            )
            .unwrap(),
            BatchQueries::rewrite(
                &strategy,
                vec![
                    RangeSum::count(HyperRect::new(vec![4, 4], vec![11, 11])),
                    RangeSum::count(HyperRect::new(vec![0, 8], vec![15, 15])),
                    RangeSum::count(HyperRect::new(vec![1, 1], vec![2, 14])),
                ],
                &shape,
            )
            .unwrap(),
        ];
        let k = store.abs_sum();
        (store, batches, 256, k)
    }

    #[test]
    fn pool_matches_serial_execution_bit_for_bit() {
        let (store, batches, n_total, k) = fixture();
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(ServeConfig::new(n_total, k).workers(3).slice_steps(5));
        let results = server.serve(&store, &requests);
        assert_eq!(results.len(), batches.len());
        for (batch, result) in batches.iter().zip(&results) {
            assert_eq!(result.status, BatchStatus::Exact);
            assert!(result.slices > 1, "5-step slices must interleave");
            let mut serial = ProgressiveExecutor::new(batch, &Sse, &store);
            assert_eq!(
                serial.drain_with_faults(&RetryPolicy::default()),
                DrainStatus::Exact
            );
            assert_eq!(result.estimates(), serial.estimates());
            assert_eq!(result.retrieved_entries, serial.retrieved_entries());
        }
    }

    #[test]
    fn bound_history_is_monotone_and_ends_at_zero() {
        let (store, batches, n_total, k) = fixture();
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(ServeConfig::new(n_total, k).workers(4).slice_steps(3));
        for result in server.serve(&store, &requests) {
            let history = &result.bound_history;
            assert!(!history.is_empty());
            assert!(history.windows(2).all(|w| w[1] <= w[0]));
            assert_eq!(*history.last().unwrap(), 0.0);
        }
    }

    #[test]
    fn cancellation_keeps_valid_progressive_estimates() {
        let (store, batches, n_total, k) = fixture();
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        // One-step slices and a single worker: batch 0 cannot finish
        // before the driver's cancel lands (the driver cancels before
        // observing any progress requirement — cancellation is
        // cooperative, so either outcome must be coherent).
        let server = BatchServer::new(ServeConfig::new(n_total, k).workers(1).slice_steps(1));
        let (results, cancelled_first) = server.serve_with(&store, &requests, |session| {
            let handle = session.handle(0);
            handle.cancel();
            !handle.is_finished() || handle.snapshot().finished
        });
        assert!(cancelled_first);
        let result = &results[0];
        match result.status {
            BatchStatus::Cancelled => {
                // The partial estimates still honor Theorem 1: each
                // true answer lies within the published bound.
                let mut serial = ProgressiveExecutor::new(&batches[0], &Sse, &store);
                serial.run_to_end();
                assert!(result.report.worst_case_bound >= 0.0);
                assert!(!result.report.is_exact || result.estimates() == serial.estimates());
            }
            BatchStatus::Exact => (), // finished before the flag was seen
            other => panic!("unexpected status {other:?}"),
        }
        // Cancelling one batch never disturbs the others.
        for result in &results[1..] {
            assert_eq!(result.status, BatchStatus::Exact);
        }
    }

    #[test]
    fn snapshots_progress_while_serving() {
        let (store, batches, n_total, k) = fixture();
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(ServeConfig::new(n_total, k).workers(2).slice_steps(2));
        let (results, peak) = server.serve_with(&store, &requests, |session| {
            assert_eq!(session.batches(), 3);
            assert_eq!(session.handles().len(), 3);
            let mut peak = 0;
            while !session.all_finished() {
                for handle in session.handles() {
                    peak = peak.max(handle.snapshot().retrieved);
                }
                std::thread::yield_now();
            }
            // Final snapshots are published before the finished flag, so
            // after the loop every handle shows its terminal state.
            for handle in session.handles() {
                let snapshot = handle.snapshot();
                assert!(snapshot.finished);
                assert!(handle.is_finished());
                peak = peak.max(snapshot.retrieved);
            }
            peak
        });
        assert!(peak > 0, "snapshots must reflect retrieval progress");
        for result in &results {
            assert_eq!(result.status, BatchStatus::Exact);
        }
    }

    #[test]
    fn unshared_cache_and_mixed_penalties_still_match_serial() {
        let (store, batches, n_total, k) = fixture();
        let diag = DiagonalQuadratic::new(vec![3.0, 1.0]);
        let requests = vec![
            BatchRequest::new(&batches[0], &diag),
            BatchRequest::new(&batches[1], &Sse),
        ];
        let server = BatchServer::new(
            ServeConfig::new(n_total, k)
                .share_cache(false)
                .slice_steps(7),
        );
        let results = server.serve(&store, &requests);
        let mut serial0 = ProgressiveExecutor::new(&batches[0], &diag, &store);
        serial0.run_to_end();
        let mut serial1 = ProgressiveExecutor::new(&batches[1], &Sse, &store);
        serial1.run_to_end();
        assert_eq!(results[0].estimates(), serial0.estimates());
        assert_eq!(results[1].estimates(), serial1.estimates());
    }

    #[test]
    fn empty_request_list_is_fine() {
        let (store, _, n_total, k) = fixture();
        let server = BatchServer::new(ServeConfig::new(n_total, k));
        assert!(server.serve(&store, &[]).is_empty());
    }

    #[test]
    fn events_are_labelled_per_batch_and_metrics_shared() {
        let (store, batches, n_total, k) = fixture();
        let sink = Arc::new(MemorySink::new());
        let registry = Arc::new(MetricsRegistry::new());
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(
            ServeConfig::new(n_total, k)
                .workers(2)
                .slice_steps(4)
                .sink(sink.clone())
                .registry(registry.clone()),
        );
        let results = server.serve(&store, &requests);
        assert_eq!(results.len(), 3);
        let mut seen = [false; 3];
        for line in sink.lines() {
            let event = jsonl::parse_line(&line).unwrap();
            if event.name().starts_with("metrics.") {
                continue; // the run-wide metrics dump is per-run, not per-batch
            }
            let batch = event
                .num("batch")
                .expect("every exec event carries the label") as usize;
            seen[batch] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all three batches must emit events"
        );
        assert!(registry.snapshot().counter("serve.steps").unwrap_or(0) > 0);
    }

    #[test]
    fn results_carry_the_final_metrics_snapshot_and_trace_gets_a_dump() {
        let (store, batches, n_total, k) = fixture();
        let sink = Arc::new(MemorySink::new());
        let registry = Arc::new(MetricsRegistry::new());
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(
            ServeConfig::new(n_total, k)
                .workers(2)
                .slice_steps(4)
                .sink(sink.clone())
                .registry(registry.clone()),
        );
        let results = server.serve(&store, &requests);
        // Every result of one run carries the SAME final snapshot, and its
        // step counter covers the whole run: one exec.step event per step.
        let steps_in_trace = sink
            .lines()
            .iter()
            .filter(|l| jsonl::parse_line(l).unwrap().name() == "exec.step")
            .count() as u64;
        for result in &results {
            assert_eq!(result.metrics, results[0].metrics);
            assert_eq!(result.metrics.counter("serve.steps"), Some(steps_in_trace));
        }
        // The snapshot is also dumped into the trace as metrics.* events,
        // after every exec.* event, and reconciles with the carried copy.
        let metric_lines: Vec<_> = sink
            .lines()
            .iter()
            .map(|l| jsonl::parse_line(l).unwrap())
            .filter(|e| e.name().starts_with("metrics."))
            .collect();
        assert!(!metric_lines.is_empty(), "trace must carry a metrics dump");
        let dumped_steps = metric_lines
            .iter()
            .find(|e| e.name() == "metrics.counter" && e.str("name") == Some("serve.steps"))
            .expect("serve.steps counter dumped");
        assert_eq!(dumped_steps.u64("value"), Some(steps_in_trace));
    }

    #[test]
    fn results_without_a_registry_carry_an_empty_snapshot() {
        let (store, batches, n_total, k) = fixture();
        let requests = vec![BatchRequest::new(&batches[0], &Sse)];
        let server = BatchServer::new(ServeConfig::new(n_total, k));
        let results = server.serve(&store, &requests);
        assert!(results[0].metrics.counters.is_empty());
    }

    #[test]
    fn observer_is_metrics_only_without_a_sink() {
        let (store, batches, n_total, k) = fixture();
        let registry = Arc::new(MetricsRegistry::new());
        let requests = vec![BatchRequest::new(&batches[0], &Sse)];
        let server = BatchServer::new(ServeConfig::new(n_total, k).registry(registry.clone()));
        server.serve(&store, &requests);
        assert!(registry.snapshot().counter("serve.steps").unwrap_or(0) > 0);
    }

    #[test]
    fn bound_target_finalizes_early_with_met_outcome() {
        let (store, batches, n_total, k) = fixture();
        // A loose-but-finite ε: the batch must stop at the certificate,
        // well before exactness, and still classify as Met.
        let mut probe = ProgressiveExecutor::new(&batches[0], &Sse, &store);
        probe.run_to_end();
        let epsilon = k * 1e-3;
        let requests = vec![BatchRequest::new(&batches[0], &Sse)
            .with_slo(SloContract::new().with_target_bound(epsilon))];
        let server = BatchServer::new(ServeConfig::new(n_total, k).workers(1).slice_steps(4));
        let results = server.serve(&store, &requests);
        let result = &results[0];
        assert!(matches!(
            result.status,
            BatchStatus::BoundReached | BatchStatus::Exact
        ));
        assert_eq!(result.slo, SloOutcome::Met);
        assert!(result.report.worst_case_bound <= epsilon);
        // The certificate still holds: the SSE penalty against the exact
        // answers is within the published Theorem-1 bound.
        let sse: f64 = result
            .estimates()
            .iter()
            .zip(probe.estimates())
            .map(|(e, x)| (e - x) * (e - x))
            .sum();
        assert!(sse <= result.report.worst_case_bound * (1.0 + 1e-9) + 1e-9);
    }

    #[test]
    fn zero_capacity_rejects_everything_atomically() {
        let (store, batches, n_total, k) = fixture();
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(ServeConfig::new(n_total, k).capacity(0));
        let results = server.serve(&store, &requests);
        assert_eq!(results.len(), requests.len(), "no batch is lost");
        for result in &results {
            assert_eq!(result.status, BatchStatus::Rejected);
            match result.slo {
                SloOutcome::Rejected {
                    estimated_cost,
                    capacity,
                } => {
                    assert!(estimated_cost > 0);
                    assert_eq!(capacity, 0);
                }
                ref other => panic!("expected Rejected, got {other:?}"),
            }
            assert!(result.retrieved_entries.is_empty(), "zero retrievals");
            // The rejected result still carries a full certificate.
            assert!(result.report.worst_case_bound > 0.0);
            assert!(!result.report.is_exact);
        }
    }

    #[test]
    fn admission_admits_within_capacity_and_rejects_overflow() {
        let (store, batches, n_total, k) = fixture();
        // Price batch 0 alone by running it to exact: its master-list
        // length is its infinite-target cost estimate.
        let mut probe = ProgressiveExecutor::new(&batches[0], &Sse, &store);
        probe.run_to_end();
        let cost0 = probe.retrieved() as u64;
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(ServeConfig::new(n_total, k).capacity(cost0));
        let results = server.serve(&store, &requests);
        assert_eq!(results[0].status, BatchStatus::Exact);
        assert_eq!(results[0].slo, SloOutcome::Met);
        // Later batches cannot fit behind batch 0's committed estimate.
        for result in &results[1..] {
            assert_eq!(result.status, BatchStatus::Rejected);
        }
    }

    #[test]
    fn deadline_expiry_degrades_with_certified_bound() {
        let (store, batches, n_total, k) = fixture();
        let requests = vec![BatchRequest::new(&batches[0], &Sse).with_slo(
            SloContract::new()
                .with_target_bound(0.0)
                .with_deadline_ticks(8),
        )];
        let server = BatchServer::new(ServeConfig::new(n_total, k).workers(1).slice_steps(4));
        let results = server.serve(&store, &requests);
        let result = &results[0];
        assert_eq!(result.status, BatchStatus::DeadlineExpired);
        assert_eq!(result.slo, SloOutcome::DegradedAtBound);
        // The batch honored the deadline to within one bounded slice and
        // published the certificate of the prefix it reached.
        assert!(result.report.fault.attempts >= 8);
        assert!(result.report.worst_case_bound > 0.0);
        assert!(result.report.worst_case_bound.is_finite());
        let history = &result.bound_history;
        assert!(history.windows(2).all(|w| w[1] <= w[0]), "still monotone");
    }

    #[test]
    fn non_binding_contracts_keep_scheduling_policies_bit_identical() {
        let (store, batches, n_total, k) = fixture();
        let requests: Vec<BatchRequest<'_>> = batches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                BatchRequest::new(b, &Sse).with_slo(SloContract::new().with_priority(i as u8))
            })
            .collect();
        let marginal = BatchServer::new(
            ServeConfig::new(n_total, k)
                .workers(3)
                .slice_steps(5)
                .scheduler(SchedulerPolicy::MarginalValue),
        )
        .serve(&store, &requests);
        let round_robin = BatchServer::new(
            ServeConfig::new(n_total, k)
                .workers(3)
                .slice_steps(5)
                .scheduler(SchedulerPolicy::RoundRobin),
        )
        .serve(&store, &requests);
        for (a, b) in marginal.iter().zip(&round_robin) {
            assert_eq!(a.status, BatchStatus::Exact);
            assert_eq!(b.status, BatchStatus::Exact);
            assert_eq!(a.estimates(), b.estimates());
            assert_eq!(a.retrieved_entries, b.retrieved_entries);
            assert_eq!(a.slo, SloOutcome::Met);
        }
    }

    #[test]
    fn slo_events_and_metrics_cover_every_outcome() {
        let (store, batches, n_total, k) = fixture();
        let sink = Arc::new(MemorySink::new());
        let registry = Arc::new(MetricsRegistry::new());
        // Capacity sized so batch 0 is admitted and the rest rejected.
        let mut probe = ProgressiveExecutor::new(&batches[0], &Sse, &store);
        probe.run_to_end();
        let requests: Vec<BatchRequest<'_>> = batches
            .iter()
            .map(|b| BatchRequest::new(b, &Sse).with_slo(SloContract::new().with_priority(2)))
            .collect();
        let server = BatchServer::new(
            ServeConfig::new(n_total, k)
                .capacity(probe.retrieved() as u64)
                .sink(sink.clone())
                .registry(registry.clone()),
        );
        server.serve(&store, &requests);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("slo.admitted"), Some(1));
        assert_eq!(
            snapshot.counter("slo.rejected"),
            Some(requests.len() as u64 - 1)
        );
        assert_eq!(snapshot.counter("slo.met"), Some(1));
        assert_eq!(snapshot.gauge("slo.queue_depth"), Some(0));
        assert!(
            snapshot.histogram("slo.bound.p2").is_some(),
            "per-priority bound histogram recorded"
        );
        let names: Vec<String> = sink
            .lines()
            .iter()
            .map(|l| jsonl::parse_line(l).unwrap().name().to_string())
            .collect();
        assert!(names.iter().any(|n| n == "slo.admitted"));
        assert!(names.iter().any(|n| n == "slo.rejected"));
        assert!(names.iter().any(|n| n == "slo.outcome"));
    }

    #[test]
    fn live_update_repairs_every_inflight_batch() {
        let (store, batches, n_total, k) = fixture();
        let shared = batchbb_storage::SharedStore::new(store);
        let serial_all = |s: &dyn CoefficientStore| -> Vec<Vec<f64>> {
            batches
                .iter()
                .map(|batch| {
                    let mut exec = ProgressiveExecutor::new(batch, &Sse, s);
                    exec.run_to_end();
                    exec.estimates().to_vec()
                })
                .collect()
        };
        let pre = serial_all(&shared);
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let key = batchbb_tensor::CoeffKey::new(&[0, 0]);
        let delta = 4.25;
        let server = BatchServer::new(ServeConfig::new(n_total, k).workers(2).slice_steps(1));
        let writes = AtomicUsize::new(0);
        let (results, _) = server.serve_with(&shared, &requests, |session| {
            session.update(&[(key, delta)], || {
                shared.add_shared(key, delta);
                writes.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(writes.load(Ordering::SeqCst), 1);
        let post = serial_all(&shared);
        // The update barrier repairs every in-flight batch, so each answer
        // is bit-identical to a serial run against the updated store; a
        // batch that finished *before* the barrier keeps its pre-update
        // answer. Mixed states (half-applied updates) must never appear.
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.status, BatchStatus::Exact);
            let estimates = result.estimates();
            assert!(
                estimates == post[i].as_slice() || estimates == pre[i].as_slice(),
                "batch {i} published a torn update"
            );
        }
    }
}
