//! Serving configuration and batch admission types.

use std::sync::Arc;

use batchbb_core::BatchQueries;
use batchbb_obs::{EventSink, MetricsRegistry, Tracer};
use batchbb_penalty::Penalty;
use batchbb_storage::{RetryPolicy, ShardTopology};

use crate::sched::SchedulerPolicy;
use crate::slo::SloContract;

/// How a [`BatchServer`](crate::BatchServer) runs its pool.
///
/// The two required parameters are the bound inputs shared by every batch:
/// `n_total` (the domain size `N^d`, Theorem 2's denominator) and
/// `k_abs_sum` (the data's coefficient ℓ¹-norm `K`, Theorem 1's scale).
/// Everything else has serving defaults tuned for small fixtures: 4
/// workers, 64-step slices, the default retry policy, and a shared
/// 16-shard read-through cache.
#[derive(Clone)]
pub struct ServeConfig {
    /// Domain size `N^d` for expected-penalty reporting.
    pub(crate) n_total: usize,
    /// Coefficient ℓ¹-norm `K` for worst-case bound reporting.
    pub(crate) k_abs_sum: f64,
    /// Pool size; clamped to at least 1.
    pub(crate) workers: usize,
    /// Steps per scheduling slice; clamped to at least 1.
    pub(crate) slice_steps: usize,
    /// Retry policy applied by every batch's fallible drain.
    pub(crate) retry: RetryPolicy,
    /// Prefetch window W each executor fetches with (1 = singleton path).
    pub(crate) prefetch_window: usize,
    /// Route all batches through one sharded read-through cache.
    pub(crate) share_cache: bool,
    /// Shard count for the shared cache.
    pub(crate) cache_shards: usize,
    /// Shared metrics registry for `exec.*` counters, if any.
    pub(crate) registry: Option<Arc<MetricsRegistry>>,
    /// Shared trace sink; each batch's events get a `batch = <id>` label.
    pub(crate) sink: Option<Arc<dyn EventSink>>,
    /// Causal tracer; with a sink also configured, every batch records a
    /// phase lifecycle and flushes it as spans at finalize.
    pub(crate) tracer: Option<Tracer>,
    /// How the pool orders runnable batches between slices.
    pub(crate) scheduler: SchedulerPolicy,
    /// Declared serving capacity in store-attempt ticks; enables
    /// admission control and load shedding when set.
    pub(crate) capacity: Option<u64>,
    /// Resident-set cap for the shared cache (`None` = unbounded).
    pub(crate) cache_capacity: Option<usize>,
    /// Scale retry attempts down under high observed fault rates.
    pub(crate) adaptive_retry: bool,
    /// Scatter-gather topology for
    /// [`BatchServer::serve_sharded`](crate::BatchServer::serve_sharded).
    pub(crate) shard_topology: Option<ShardTopology>,
}

impl ServeConfig {
    /// Creates a config with serving defaults.
    ///
    /// # Panics
    ///
    /// Panics if `n_total < 2` (the expected-penalty denominator
    /// `n_total - 1` must be positive).
    pub fn new(n_total: usize, k_abs_sum: f64) -> Self {
        assert!(n_total > 1, "need a non-trivial domain");
        ServeConfig {
            n_total,
            k_abs_sum,
            workers: 4,
            slice_steps: 64,
            retry: RetryPolicy::default(),
            prefetch_window: 1,
            share_cache: true,
            cache_shards: 16,
            registry: None,
            sink: None,
            tracer: None,
            scheduler: SchedulerPolicy::default(),
            capacity: None,
            cache_capacity: None,
            adaptive_retry: true,
            shard_topology: None,
        }
    }

    /// Picks the slice scheduling policy (default:
    /// [`SchedulerPolicy::MarginalValue`]). Either policy leaves batch
    /// *content* untouched — only interleaving changes.
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.scheduler = policy;
        self
    }

    /// Declares serving capacity in store-attempt ticks and turns on
    /// admission control plus load shedding.
    ///
    /// At submission each batch's contract is priced
    /// ([`crate::AdmissionEstimate`]) and the run rejects — with
    /// [`crate::SloOutcome::Rejected`] — any batch whose estimate does
    /// not fit the capacity left after earlier admissions, instead of
    /// queueing it unboundedly. At runtime, once the pool's *actual*
    /// consumed attempts exceed the declared capacity (possible only when
    /// faults inflate costs past their estimates), still-running batches
    /// are finalized early at their certified bounds
    /// ([`crate::BatchStatus::Shed`]) rather than overrunning further.
    /// `None` (the default) admits everything and never sheds.
    pub fn capacity(mut self, capacity: u64) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Caps the shared cache's resident set (entries; see
    /// [`batchbb_storage::ShardedCachingStore::with_capacity`]). The
    /// default keeps the serving cache unbounded, which is safe for
    /// one-shot runs over finite master lists.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = Some(entries.max(1));
        self
    }

    /// Enables or disables adaptive retry budgets (default: enabled).
    ///
    /// When enabled, a batch that has observed a high store-fault rate
    /// (over 25 % of at least 32 attempts) derives a slice policy with
    /// proportionally fewer attempts per retrieval
    /// ([`RetryPolicy::adapted`]), so retries cannot amplify an overload.
    pub fn adaptive_retry(mut self, enabled: bool) -> Self {
        self.adaptive_retry = enabled;
        self
    }

    /// Sets the worker-pool size (values below 1 become 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-slice step budget (values below 1 become 1).
    ///
    /// Smaller slices interleave batches more finely (better fairness,
    /// more scheduling overhead); `usize::MAX` runs each batch to
    /// completion in one slice.
    pub fn slice_steps(mut self, steps: usize) -> Self {
        self.slice_steps = steps.max(1);
        self
    }

    /// Sets the retry policy used by every batch's fallible drain.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the prefetch window W (values below 1 become 1): each worker
    /// slice fetches up to W coefficients per `try_get_many` batch instead
    /// of one per step, cutting store lock acquisitions roughly W-fold
    /// while leaving results bit-identical (see
    /// `ProgressiveExecutor::with_prefetch_window`).
    pub fn prefetch_window(mut self, w: usize) -> Self {
        self.prefetch_window = w.max(1);
        self
    }

    /// Enables or disables the shared read-through coefficient cache.
    ///
    /// With sharing on (the default), concurrent batches that need the
    /// same coefficient trigger exactly one physical fetch; with it off,
    /// every batch reads the store directly.
    pub fn share_cache(mut self, share: bool) -> Self {
        self.share_cache = share;
        self
    }

    /// Sets the shard count of the shared cache (values below 1 become 1).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Attaches a metrics registry; every batch's executor records its
    /// `exec.*` counters and histograms there.
    pub fn registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Attaches a trace sink; batch `i`'s events are stamped with a
    /// `batch = i` label so one trace can be split per batch afterwards.
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a causal [`Tracer`]. Combined with a
    /// [`sink`](ServeConfig::sink), every admitted batch records a
    /// [`batchbb_obs::Phase`] lifecycle — admission, queueing, execution,
    /// store waits, parking, repair, finalize — whose intervals exactly
    /// partition its admitted-to-finalized wall time, flushed into the
    /// trace as `span.start`/`span.end` events at finalize. Wire the
    /// **same** tracer into any traced store wrappers
    /// ([`batchbb_storage::AsyncFetchStore::with_tracing`],
    /// [`batchbb_storage::VersionedStore::with_tracing`]) so store spans
    /// share the lifecycle clock. Without a sink this is inert; tracing
    /// never changes batch results (the serve proptests assert
    /// bit-identity with tracing on and off).
    pub fn tracing(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Sets the scatter-gather shard topology used by
    /// [`BatchServer::serve_sharded`](crate::BatchServer::serve_sharded):
    /// shard count, replication, the mock-network latency profile, and
    /// the hedge policy. Ignored by the single-store entry points.
    pub fn shard_topology(mut self, topology: ShardTopology) -> Self {
        self.shard_topology = Some(topology);
        self
    }
}

/// One batch admitted to the server: the rewritten queries plus the
/// penalty function that scores coefficient importance for *this* batch.
///
/// Requests only borrow — rewriting (`BatchQueries::rewrite`) stays with
/// the caller, so the same rewritten batch can be served repeatedly or
/// under several penalties without re-deriving it.
#[derive(Clone, Copy)]
pub struct BatchRequest<'a> {
    /// The rewritten query batch.
    pub batch: &'a BatchQueries,
    /// The penalty function whose `ι_p` orders this batch's retrievals.
    pub penalty: &'a dyn Penalty,
    /// The batch's service-level contract (defaults to non-binding:
    /// ε = ∞, no deadline, priority 0).
    pub slo: SloContract,
}

impl<'a> BatchRequest<'a> {
    /// Pairs a rewritten batch with its penalty under the default
    /// (non-binding) contract.
    pub fn new(batch: &'a BatchQueries, penalty: &'a dyn Penalty) -> Self {
        BatchRequest {
            batch,
            penalty,
            slo: SloContract::default(),
        }
    }

    /// Attaches a service-level contract to this request.
    pub fn with_slo(mut self, slo: SloContract) -> Self {
        self.slo = slo;
        self
    }
}
