//! Slice scheduling policies for the worker pool.
//!
//! Scheduling decides only *interleaving*, never *content* (each batch
//! walks its own importance order regardless of when its slices run), so
//! the policy is free to optimize fleet-level progress: under the default
//! [`SchedulerPolicy::MarginalValue`] every runnable batch is ranked by
//! its estimated bound-shrink-per-retrieval × priority, and workers always
//! pop the top of one shared heap. [`SchedulerPolicy::RoundRobin`] keeps
//! the earlier per-worker deques with work stealing — pure fairness, no
//! contract awareness.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, VecDeque};

use parking_lot::Mutex;

/// How the pool orders runnable batches between slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Rank batches by marginal value: the certified worst-case bound
    /// still outstanding, averaged over the retrievals left to spend it
    /// (`bound / (remaining + deferred)`), weighted by `priority + 1`.
    /// The batch whose next slice buys the most certified-error reduction
    /// per retrieval — scaled by how much the caller cares — runs first;
    /// a batch deep in diminishing returns yields to fresher work. Ties
    /// break toward fewer slices consumed, then lower admission index,
    /// keeping the order deterministic.
    #[default]
    MarginalValue,
    /// The original policy: per-worker FIFO run queues with steal-from-
    /// the-back work stealing. Fair and contract-blind.
    RoundRobin,
}

/// One runnable batch in the marginal-value heap.
#[derive(Debug)]
pub(crate) struct Rank {
    score: f64,
    slices: usize,
    index: usize,
}

impl PartialEq for Rank {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}

impl Eq for Rank {}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Max-heap: higher score first, then fewer slices, then lower
        // admission index.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.slices.cmp(&self.slices))
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// The pool's runnable-batch queue, shaped by the configured policy.
pub(crate) enum SliceQueue {
    Marginal(Mutex<BinaryHeap<Rank>>),
    RoundRobin(Vec<Mutex<VecDeque<usize>>>),
}

impl SliceQueue {
    /// Builds the queue and seeds it with `(index, initial_score)` pairs
    /// in admission order.
    pub(crate) fn new(
        policy: SchedulerPolicy,
        workers: usize,
        seeds: impl Iterator<Item = (usize, f64)>,
    ) -> Self {
        match policy {
            SchedulerPolicy::MarginalValue => {
                let heap = seeds
                    .map(|(index, score)| Rank {
                        score,
                        slices: 0,
                        index,
                    })
                    .collect();
                SliceQueue::Marginal(Mutex::new(heap))
            }
            SchedulerPolicy::RoundRobin => {
                let queues: Vec<Mutex<VecDeque<usize>>> =
                    (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
                for (index, _) in seeds {
                    queues[index % workers].lock().push_back(index);
                }
                SliceQueue::RoundRobin(queues)
            }
        }
    }

    /// Takes the next runnable batch for worker `me`: the heap top under
    /// marginal value; own queue front, then victims' backs, under
    /// round-robin.
    pub(crate) fn pop(&self, me: usize) -> Option<usize> {
        match self {
            SliceQueue::Marginal(heap) => heap.lock().pop().map(|rank| rank.index),
            SliceQueue::RoundRobin(queues) => {
                if let Some(index) = queues[me].lock().pop_front() {
                    return Some(index);
                }
                for offset in 1..queues.len() {
                    let victim = (me + offset) % queues.len();
                    if let Some(index) = queues[victim].lock().pop_back() {
                        return Some(index);
                    }
                }
                None
            }
        }
    }

    /// Re-enqueues a batch after an inconclusive slice with its refreshed
    /// score (ignored under round-robin).
    pub(crate) fn push(&self, me: usize, index: usize, score: f64, slices: usize) {
        match self {
            SliceQueue::Marginal(heap) => heap.lock().push(Rank {
                score,
                slices,
                index,
            }),
            SliceQueue::RoundRobin(queues) => queues[me].lock().push_back(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_queue_pops_by_score_then_slices_then_index() {
        let q = SliceQueue::new(
            SchedulerPolicy::MarginalValue,
            2,
            [(0, 1.0), (1, 3.0), (2, 3.0)].into_iter(),
        );
        assert_eq!(q.pop(0), Some(1), "equal scores: lower index wins");
        q.push(0, 1, 3.0, 1);
        assert_eq!(q.pop(1), Some(2), "fewer slices beats re-queued peer");
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(0), Some(0), "lowest score drains last");
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn round_robin_steals_from_victims_backs() {
        let q = SliceQueue::new(
            SchedulerPolicy::RoundRobin,
            2,
            [(0, 0.0), (1, 0.0), (2, 0.0)].into_iter(),
        );
        // Worker 1's own queue holds [1]; worker 0's holds [0, 2].
        assert_eq!(q.pop(1), Some(1));
        assert_eq!(q.pop(1), Some(2), "steal takes the victim's back");
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), None);
    }
}
