//! Per-batch SLO contracts: admission pricing, outcomes, and `slo.*`
//! instrumentation.
//!
//! The paper's Theorem 1 gives every progressive prefix a *certified*
//! worst-case penalty bound, so a server never has to choose between
//! "answer" and "fail": any batch can be finalized early with its
//! certificate. This module turns that property into a serving contract —
//! a caller names a target bound ε, a deadline, and a priority
//! ([`SloContract`]); the server prices the contract against declared
//! capacity at admission ([`AdmissionEstimate`]) and classifies every
//! result with an explicit [`SloOutcome`]. Degradation is always
//! *certified*: a deadline-expired, load-shed, or fault-degraded batch
//! still publishes the Theorem-1/2 bounds of the prefix it reached, never
//! a torn or uncertified answer.

use std::sync::Arc;

use batchbb_core::ProgressiveExecutor;
use batchbb_obs::{Event, EventSink, MetricsRegistry};

/// Per-batch service-level contract, attached at submission via
/// [`BatchRequest::with_slo`](crate::BatchRequest::with_slo).
///
/// The default contract does not bind: infinite target bound, no
/// deadline, priority 0 — the batch runs to exact answers and serving is
/// bit-identical to an uncontracted run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloContract {
    /// Target certified worst-case bound ε: the batch may be finalized —
    /// with [`SloOutcome::Met`] — as soon as its Theorem-1 certificate
    /// drops to `<= ε`. `f64::INFINITY` (the default) means *no early
    /// finalization*: the batch runs to exact answers. `0.0` also runs to
    /// a zero-bound certificate (exactness, or a zero-importance tail).
    pub target_bound: f64,
    /// Deadline in simulated ticks (the retry clock: one tick per store
    /// attempt plus charged backoff). When the batch's elapsed ticks reach
    /// the deadline it is finalized at its current certified bound; the
    /// remaining tick budget also caps retry attempts and backoff so a
    /// faulty store cannot blow the contract. `None` means no deadline.
    pub deadline_ticks: Option<u64>,
    /// Scheduling priority: higher is served sooner. The marginal-value
    /// scheduler weighs a batch's bound-shrink-per-retrieval by
    /// `priority + 1`, and load shedding consumes low-priority slices
    /// first (they rank last, so they are the ones still unfinished when
    /// capacity runs out).
    pub priority: u8,
}

impl Default for SloContract {
    fn default() -> Self {
        SloContract {
            target_bound: f64::INFINITY,
            deadline_ticks: None,
            priority: 0,
        }
    }
}

impl SloContract {
    /// The non-binding default contract (run to exact, no deadline).
    pub fn new() -> Self {
        SloContract::default()
    }

    /// Sets the target certified bound ε (negative values are clamped to
    /// `0.0`; `NaN` becomes the non-binding `INFINITY`).
    pub fn with_target_bound(mut self, epsilon: f64) -> Self {
        self.target_bound = if epsilon.is_nan() {
            f64::INFINITY
        } else {
            epsilon.max(0.0)
        };
        self
    }

    /// Sets the deadline in simulated ticks.
    pub fn with_deadline_ticks(mut self, ticks: u64) -> Self {
        self.deadline_ticks = Some(ticks);
        self
    }

    /// Sets the scheduling priority (higher = served sooner).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Whether any term of this contract can alter execution (a finite
    /// target bound or a deadline). Non-binding contracts keep serving
    /// bit-identical to the uncontracted pool.
    pub fn binds(&self) -> bool {
        self.target_bound.is_finite() || self.deadline_ticks.is_some()
    }

    /// The scheduler weight: `priority + 1`, so priority 0 still has
    /// positive marginal value.
    pub(crate) fn priority_weight(&self) -> f64 {
        f64::from(self.priority) + 1.0
    }
}

/// How a served batch fared against its [`SloContract`], carried on every
/// [`BatchResult`](crate::BatchResult).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloOutcome {
    /// The final certified worst-case bound is within the contract's
    /// target (`<= ε`). Exact answers always qualify, as does any batch
    /// under the default infinite target.
    Met,
    /// The batch was finalized — by deadline expiry, load shedding,
    /// persistent faults, or a spent budget — with a certified bound
    /// still above its target. The answer remains valid under its
    /// published Theorem-1/2 certificate; it is degraded, not torn.
    DegradedAtBound,
    /// Admission control refused the batch: its estimated cost did not
    /// fit the remaining declared capacity. The batch performed zero
    /// retrievals and its result carries the full initial certificate.
    Rejected {
        /// Steps the admission controller priced the contract at.
        estimated_cost: u64,
        /// The declared capacity the estimate was weighed against.
        capacity: u64,
    },
}

/// Admission-time cost estimate for one batch under its contract.
///
/// Priced from the batch's *initial bound* and its *per-retrieval shrink*:
/// the executor's pending importances, sorted descending, are exactly the
/// certified-bound trajectory (`bound after t steps = K^α · ι_(t)`), so
/// steps-to-ε is the first index whose bound meets the target. A deadline
/// caps the estimate — the batch cannot consume more ticks than that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionEstimate {
    /// The certified worst-case bound before any retrieval.
    pub initial_bound: f64,
    /// Fitted geometric per-retrieval shrink ratio of the certified bound
    /// over the priced prefix (`(bound_ε / bound_0)^(1/steps)`; `0.0`
    /// when the prefix ends exact or the estimate is degenerate). Purely
    /// informational — the steps estimate below is computed from the
    /// exact importance quantiles, not from this fit.
    pub shrink_rate: f64,
    /// Estimated retrieval steps to honor the contract: steps until the
    /// certified bound reaches ε (the full master list under an infinite
    /// target), capped by the deadline budget.
    pub steps_to_target: u64,
}

/// Prices `contract` against the executor's initial importance profile.
pub(crate) fn estimate_cost(
    exec: &ProgressiveExecutor<'_>,
    contract: &SloContract,
    k_abs_sum: f64,
) -> AdmissionEstimate {
    let mut iotas = exec.pending_importances();
    iotas.sort_unstable_by(|a, b| b.total_cmp(a));
    let scale = k_abs_sum.powf(exec.homogeneity());
    let initial_bound = iotas.first().map_or(0.0, |iota| scale * iota);
    let m = iotas.len() as u64;
    let steps = if contract.target_bound.is_finite() {
        // First t with bound-after-t-steps = scale·ι_(t) within target;
        // retrieving everything (t = m) always reaches bound 0.
        iotas
            .iter()
            .position(|iota| scale * iota <= contract.target_bound)
            .map_or(m, |t| t as u64)
    } else {
        m
    };
    let steps_to_target = contract.deadline_ticks.map_or(steps, |d| steps.min(d));
    let achieved = if (steps as usize) < iotas.len() {
        scale * iotas[steps as usize]
    } else {
        0.0
    };
    let shrink_rate = if steps == 0 || initial_bound <= 0.0 || achieved <= 0.0 {
        0.0
    } else {
        (achieved / initial_bound).powf(1.0 / steps as f64)
    };
    AdmissionEstimate {
        initial_bound,
        shrink_rate,
        steps_to_target,
    }
}

/// Emits `slo.*` events and metrics for one serving run. All methods are
/// cheap no-ops when neither a sink nor a registry is configured.
pub(crate) struct SloObserver {
    sink: Option<Arc<dyn EventSink>>,
    registry: Option<Arc<MetricsRegistry>>,
}

impl SloObserver {
    pub(crate) fn new(
        sink: Option<Arc<dyn EventSink>>,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        SloObserver { sink, registry }
    }

    fn emit(&self, event: Event) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.emit(&event);
            }
        }
    }

    fn count(&self, name: &str) {
        if let Some(registry) = &self.registry {
            registry.counter(name).inc();
        }
    }

    fn contract_fields(event: Event, contract: &SloContract) -> Event {
        let event = event
            .u64("priority", u64::from(contract.priority))
            .f64_finite("target_bound", contract.target_bound);
        match contract.deadline_ticks {
            Some(d) => event.u64("deadline_ticks", d),
            None => event,
        }
    }

    /// Publishes the current runnable-queue depth (`slo.queue_depth`
    /// gauge): admitted batches still unfinished. Overload runs assert
    /// this stays bounded by the admitted count — rejection, not
    /// queueing, absorbs offered load beyond capacity.
    pub(crate) fn set_queue_depth(&self, depth: u64) {
        if let Some(registry) = &self.registry {
            registry
                .gauge("slo.queue_depth")
                .set(i64::try_from(depth).unwrap_or(i64::MAX));
        }
    }

    pub(crate) fn on_admitted(
        &self,
        batch: usize,
        contract: &SloContract,
        estimate: &AdmissionEstimate,
        capacity: Option<u64>,
    ) {
        self.count("slo.admitted");
        let event = Self::contract_fields(Event::new("slo.admitted"), contract)
            .u64("batch", batch as u64)
            .u64("estimated_cost", estimate.steps_to_target)
            .f64_finite("initial_bound", estimate.initial_bound);
        self.emit(match capacity {
            Some(c) => event.u64("capacity", c),
            None => event,
        });
    }

    pub(crate) fn on_rejected(
        &self,
        batch: usize,
        contract: &SloContract,
        estimate: &AdmissionEstimate,
        capacity: u64,
    ) {
        self.count("slo.rejected");
        self.emit(
            Self::contract_fields(Event::new("slo.rejected"), contract)
                .u64("batch", batch as u64)
                .u64("estimated_cost", estimate.steps_to_target)
                .u64("capacity", capacity),
        );
    }

    /// Records a finalized batch's contract outcome: the `slo.met` /
    /// `slo.degraded` counters, the per-priority certified-bound
    /// histogram, and one `slo.outcome` event. `cause` is the terminal
    /// [`BatchStatus`](crate::BatchStatus) label; deadline expiries and
    /// sheds get their own counters on top of `slo.degraded`/`slo.met`.
    pub(crate) fn on_outcome(
        &self,
        batch: usize,
        contract: &SloContract,
        outcome: &SloOutcome,
        cause: &'static str,
        bound: f64,
        elapsed_ticks: u64,
    ) {
        let label = match outcome {
            SloOutcome::Met => {
                self.count("slo.met");
                "met"
            }
            SloOutcome::DegradedAtBound => {
                self.count("slo.degraded");
                "degraded_at_bound"
            }
            SloOutcome::Rejected { .. } => "rejected",
        };
        match cause {
            "deadline_expired" => self.count("slo.deadline_expired"),
            "shed" => self.count("slo.shed"),
            _ => {}
        }
        if let Some(registry) = &self.registry {
            // Histograms bucket u64s; certified bounds are scaled to
            // nano-units so sub-unit bounds keep resolution (log2 buckets
            // make the absolute scale immaterial for percentile shape).
            let scaled = if bound.is_finite() && bound > 0.0 {
                (bound * 1e9).min(u64::MAX as f64) as u64
            } else {
                0
            };
            registry
                .histogram(&format!("slo.bound.p{}", contract.priority))
                .record(scaled);
        }
        self.emit(
            Self::contract_fields(Event::new("slo.outcome"), contract)
                .u64("batch", batch as u64)
                .str("outcome", label)
                .str("cause", cause)
                .f64("bound", bound)
                .u64("elapsed_ticks", elapsed_ticks),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_contract_does_not_bind() {
        let c = SloContract::default();
        assert!(!c.binds());
        assert_eq!(c.priority_weight(), 1.0);
        assert!(SloContract::new().with_target_bound(1.0).binds());
        assert!(SloContract::new().with_deadline_ticks(10).binds());
        assert!(!SloContract::new().with_priority(7).binds());
    }

    #[test]
    fn target_bound_sanitizes_nan_and_negatives() {
        assert_eq!(
            SloContract::new().with_target_bound(f64::NAN).target_bound,
            f64::INFINITY
        );
        assert_eq!(SloContract::new().with_target_bound(-3.0).target_bound, 0.0);
    }
}
