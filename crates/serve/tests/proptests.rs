//! Property-based determinism tests for the batch server: random batch
//! mixes pushed through the worker pool produce final answers
//! bit-identical to sequential executor runs, for every penalty function
//! and every pool shape.

use proptest::prelude::*;

use batchbb_core::{BatchQueries, ProgressiveExecutor};
use batchbb_penalty::{Combination, DiagonalQuadratic, LaplacianPenalty, LpPenalty, Penalty, Sse};
use batchbb_query::{partition, LinearStrategy, RangeSum, WaveletStrategy};
use batchbb_serve::{BatchRequest, BatchServer, BatchStatus, ServeConfig, SloContract, SloOutcome};
use batchbb_storage::{FaultInjectingStore, FaultPlan, MemoryStore};
use batchbb_tensor::{Shape, Tensor};
use batchbb_wavelet::Wavelet;

/// A random instance: data tensor plus several random-partition batches.
fn arb_instance() -> impl Strategy<Value = (Tensor, Vec<Vec<RangeSum>>, Shape)> {
    (2u32..5, 2u32..4, 2usize..5, 0u64..1000).prop_flat_map(|(bx, by, nbatches, seed)| {
        let shape = Shape::new(vec![1usize << bx, 1usize << by]).unwrap();
        let len = shape.len();
        prop::collection::vec(0.0f64..9.0, len).prop_map(move |vals| {
            let shape = Shape::new(vec![1usize << bx, 1usize << by]).unwrap();
            let data = Tensor::from_vec(shape.clone(), vals).unwrap();
            let batches = (0..nbatches)
                .map(|b| {
                    let cells = 2 + (seed as usize + b) % 4;
                    partition::random_partition(&shape, cells.min(shape.len()), seed + b as u64)
                        .into_iter()
                        .map(RangeSum::count)
                        .collect()
                })
                .collect();
            (data, batches, shape)
        })
    })
}

/// One penalty per family the workspace ships, sized for `batch_size`
/// (several families carry per-query weights and are batch-size
/// specific).
fn penalty_family(family: usize, batch_size: usize) -> Box<dyn Penalty> {
    match family {
        0 => Box::new(Sse),
        1 => Box::new(DiagonalQuadratic::new(
            (0..batch_size).map(|i| 1.0 + i as f64).collect(),
        )),
        2 => Box::new(LpPenalty::new(1.0)),
        3 => Box::new(LaplacianPenalty::path(batch_size)),
        _ => Box::new(Combination::new(vec![
            (0.5, Box::new(Sse) as Box<dyn Penalty>),
            (0.5, Box::new(DiagonalQuadratic::new(vec![2.0; batch_size]))),
        ])),
    }
}

const FAMILIES: usize = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batch mixes through the pool equal sequential runs bit for
    /// bit, for every penalty function — scheduling decides interleaving,
    /// never content.
    #[test]
    fn pool_is_bit_identical_to_sequential((data, query_batches, shape) in arb_instance(),
                                           workers in 1usize..5,
                                           slice in 1usize..9,
                                           share in any::<bool>()) {
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let n_total = shape.len().max(2);
        let k = store.abs_sum();
        let batches: Vec<BatchQueries> = query_batches
            .iter()
            .map(|qs| BatchQueries::rewrite(&strategy, qs.clone(), &shape).unwrap())
            .collect();
        for family in 0..FAMILIES {
            let panel: Vec<Box<dyn Penalty>> = batches
                .iter()
                .map(|b| penalty_family(family, b.len()))
                .collect();
            let requests: Vec<BatchRequest<'_>> = batches
                .iter()
                .zip(&panel)
                .map(|(b, p)| BatchRequest::new(b, p.as_ref()))
                .collect();
            let server = BatchServer::new(
                ServeConfig::new(n_total, k)
                    .workers(workers)
                    .slice_steps(slice)
                    .share_cache(share),
            );
            let results = server.serve(&store, &requests);
            prop_assert_eq!(results.len(), batches.len());
            for ((batch, penalty), result) in batches.iter().zip(&panel).zip(&results) {
                prop_assert_eq!(result.status, BatchStatus::Exact);
                let mut serial = ProgressiveExecutor::new(batch, penalty.as_ref(), &store);
                serial.run_to_end();
                prop_assert_eq!(result.estimates(), serial.estimates(),
                    "penalty {} diverged under workers={} slice={} share={}",
                    penalty.name(), workers, slice, share);
                prop_assert_eq!(&result.retrieved_entries, &serial.retrieved_entries());
            }
        }
    }

    /// Prefetch windows change only fetch batching, never answers: a pool
    /// run with W ∈ {4, 16} is bit-identical to the W = 1 singleton path,
    /// batch for batch.
    #[test]
    fn prefetch_window_is_bit_identical((data, query_batches, shape) in arb_instance(),
                                        workers in 1usize..5,
                                        slice in 1usize..9,
                                        share in any::<bool>()) {
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let n_total = shape.len().max(2);
        let k = store.abs_sum();
        let batches: Vec<BatchQueries> = query_batches
            .iter()
            .map(|qs| BatchQueries::rewrite(&strategy, qs.clone(), &shape).unwrap())
            .collect();
        let panel: Vec<Box<dyn Penalty>> = batches
            .iter()
            .enumerate()
            .map(|(i, b)| penalty_family(i % FAMILIES, b.len()))
            .collect();
        let requests: Vec<BatchRequest<'_>> = batches
            .iter()
            .zip(&panel)
            .map(|(b, p)| BatchRequest::new(b, p.as_ref()))
            .collect();
        let serve = |w: usize| {
            BatchServer::new(
                ServeConfig::new(n_total, k)
                    .workers(workers)
                    .slice_steps(slice)
                    .share_cache(share)
                    .prefetch_window(w),
            )
            .serve(&store, &requests)
        };
        let baseline = serve(1);
        for w in [4usize, 16] {
            let results = serve(w);
            prop_assert_eq!(results.len(), baseline.len());
            for (got, want) in results.iter().zip(&baseline) {
                prop_assert_eq!(got.status, want.status);
                prop_assert_eq!(got.estimates(), want.estimates(),
                    "prefetch window {} diverged under workers={} slice={} share={}",
                    w, workers, slice, share);
                prop_assert_eq!(&got.retrieved_entries, &want.retrieved_entries);
            }
        }
    }

    /// Degraded results carry *reconciling* certificates: under seeded
    /// faults (transient rates plus permanently broken keys) and every
    /// pool shape, each batch — whatever its terminal status — publishes
    /// a monotone non-increasing bound history ending at its final
    /// certified bound, a fault ledger that balances exactly, and an
    /// `SloOutcome` that agrees with the certificate (`Met` iff the final
    /// bound meets the target).
    #[test]
    fn degraded_results_carry_reconciling_certificates(
        (data, query_batches, shape) in arb_instance(),
        workers in 1usize..5,
        slice in 1usize..9,
        seed in 0u64..1000,
        rate in 0.0f64..0.5,
        broken in 0usize..3,
        eps_scale in 0.0f64..1.0,
    ) {
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let n_total = shape.len().max(2);
        let k = store.abs_sum();
        let broken_keys: Vec<_> = store.iter().map(|(key, _)| *key).take(broken).collect();
        let faulty = FaultInjectingStore::new(
            store,
            FaultPlan::new(seed)
                .with_transient_rate(rate)
                .with_permanent_keys(broken_keys),
        );
        let batches: Vec<BatchQueries> = query_batches
            .iter()
            .map(|qs| BatchQueries::rewrite(&strategy, qs.clone(), &shape).unwrap())
            .collect();
        let epsilon = k * eps_scale * 1e-2;
        let requests: Vec<BatchRequest<'_>> = batches
            .iter()
            .map(|b| {
                BatchRequest::new(b, &Sse)
                    .with_slo(SloContract::new().with_target_bound(epsilon))
            })
            .collect();
        let server = BatchServer::new(
            ServeConfig::new(n_total, k).workers(workers).slice_steps(slice),
        );
        let results = server.serve(&faulty, &requests);
        prop_assert_eq!(results.len(), batches.len(), "no batch lost");
        for result in &results {
            let history = &result.bound_history;
            prop_assert!(!history.is_empty());
            prop_assert!(history.windows(2).all(|w| w[1] <= w[0]),
                "bound history not monotone under faults: {history:?}");
            prop_assert_eq!(*history.last().unwrap(), result.report.worst_case_bound,
                "history must end at the final certified bound");
            let fault = &result.report.fault;
            prop_assert!(fault.attempts_reconcile(), "torn ledger: {fault:?}");
            prop_assert!(fault.deferrals_reconcile(result.report.deferred.len() as u64));
            let met = result.report.worst_case_bound <= epsilon;
            match result.slo {
                SloOutcome::Met => prop_assert!(met,
                    "Met with bound {} above target {epsilon}", result.report.worst_case_bound),
                SloOutcome::DegradedAtBound => prop_assert!(!met,
                    "DegradedAtBound with bound {} within target {epsilon}",
                    result.report.worst_case_bound),
                SloOutcome::Rejected { .. } =>
                    prop_assert_eq!(result.status, BatchStatus::Rejected),
            }
            prop_assert!(result.report.worst_case_bound >= 0.0);
            prop_assert!(result.report.worst_case_bound.is_finite());
        }
    }

    /// Rejection never loses or tears a batch: under an arbitrary declared
    /// capacity every submitted batch comes back exactly once, rejected
    /// batches performed zero retrievals and carry their full initial
    /// certificate, and admitted batches (fault-free store) finish exact,
    /// bit-identical to sequential runs — admission decides *whether* a
    /// batch runs, never *what* it computes.
    #[test]
    fn rejection_never_loses_or_tears_admitted_batches(
        (data, query_batches, shape) in arb_instance(),
        workers in 1usize..5,
        slice in 1usize..9,
        capacity in 0u64..400,
    ) {
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let n_total = shape.len().max(2);
        let k = store.abs_sum();
        let batches: Vec<BatchQueries> = query_batches
            .iter()
            .map(|qs| BatchQueries::rewrite(&strategy, qs.clone(), &shape).unwrap())
            .collect();
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server = BatchServer::new(
            ServeConfig::new(n_total, k)
                .workers(workers)
                .slice_steps(slice)
                .capacity(capacity),
        );
        let results = server.serve(&store, &requests);
        prop_assert_eq!(results.len(), batches.len(), "every batch returns exactly once");
        let mut committed = 0u64;
        for (batch, result) in batches.iter().zip(&results) {
            let mut serial = ProgressiveExecutor::new(batch, &Sse, &store);
            serial.run_to_end();
            let cost = serial.retrieved() as u64;
            match result.status {
                BatchStatus::Rejected => {
                    prop_assert!(result.retrieved_entries.is_empty(),
                        "a rejected batch must not have touched the store");
                    prop_assert!(
                        matches!(result.slo, SloOutcome::Rejected { .. }),
                        "rejected status without a Rejected outcome"
                    );
                    prop_assert!(committed + cost > capacity,
                        "batch rejected although its cost fit the capacity left");
                }
                BatchStatus::Exact => {
                    prop_assert!(committed + cost <= capacity,
                        "batch admitted although its cost overflowed the capacity left");
                    committed += cost;
                    prop_assert_eq!(result.estimates(), serial.estimates(),
                        "admitted batch diverged from its sequential run");
                    prop_assert_eq!(&result.retrieved_entries, &serial.retrieved_entries());
                    prop_assert_eq!(result.slo, SloOutcome::Met);
                }
                other => prop_assert!(false, "fault-free admitted batch ended {other:?}"),
            }
        }
    }

    /// Tracing is bit-for-bit free: a run with a causal tracer and sink
    /// attached publishes exactly the results of the untraced run —
    /// estimates, retrieved entries, statuses, bound histories, and (on
    /// the single-worker faulty configuration, where interleaving is
    /// deterministic) the whole fault ledger. Spans observe; they never
    /// steer.
    #[test]
    fn tracing_is_bit_for_bit_free(
        (data, query_batches, shape) in arb_instance(),
        workers in 1usize..5,
        slice in 1usize..9,
        seed in 0u64..1000,
        rate in 0.0f64..0.4,
    ) {
        use batchbb_obs::{MemorySink, Tracer};
        use std::sync::Arc;

        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let n_total = shape.len().max(2);
        let k = store.abs_sum();
        let batches: Vec<BatchQueries> = query_batches
            .iter()
            .map(|qs| BatchQueries::rewrite(&strategy, qs.clone(), &shape).unwrap())
            .collect();
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        // Fault-free, any pool shape: content is interleaving-independent,
        // so traced and untraced runs must agree exactly.
        let run = |traced: bool| {
            let mut config = ServeConfig::new(n_total, k).workers(workers).slice_steps(slice);
            if traced {
                config = config
                    .tracing(Tracer::new(seed))
                    .sink(Arc::new(MemorySink::new()));
            }
            BatchServer::new(config).serve(&store, &requests)
        };
        let plain = run(false);
        let traced = run(true);
        prop_assert_eq!(plain.len(), traced.len());
        for (want, got) in plain.iter().zip(&traced) {
            prop_assert_eq!(want.status, got.status);
            prop_assert_eq!(want.estimates(), got.estimates());
            prop_assert_eq!(&want.retrieved_entries, &got.retrieved_entries);
            prop_assert_eq!(&want.bound_history, &got.bound_history);
        }
        // Seeded faults, one worker: the whole run is deterministic, so
        // the comparison extends to the fault ledger tick for tick. Each
        // run gets a *fresh* fault plan — the injector's schedule advances
        // with every attempt, so a shared instance would desynchronize.
        let run_faulty = |traced: bool| {
            let faulty = FaultInjectingStore::new(
                MemoryStore::from_entries(strategy.transform_data(&data)),
                FaultPlan::new(seed).with_transient_rate(rate),
            );
            let mut config = ServeConfig::new(n_total, k).workers(1).slice_steps(slice);
            if traced {
                config = config
                    .tracing(Tracer::new(seed))
                    .sink(Arc::new(MemorySink::new()));
            }
            BatchServer::new(config).serve(&faulty, &requests)
        };
        let plain = run_faulty(false);
        let traced = run_faulty(true);
        for (want, got) in plain.iter().zip(&traced) {
            prop_assert_eq!(want.status, got.status);
            prop_assert_eq!(want.estimates(), got.estimates());
            prop_assert_eq!(&want.retrieved_entries, &got.retrieved_entries);
            prop_assert_eq!(&want.bound_history, &got.bound_history);
            prop_assert_eq!(&want.report.fault, &got.report.fault,
                "tracing must not perturb the fault ledger");
            prop_assert_eq!(want.report.worst_case_bound.to_bits(),
                got.report.worst_case_bound.to_bits());
            prop_assert_eq!(want.report.expected_penalty.to_bits(),
                got.report.expected_penalty.to_bits());
        }
    }

    /// Every served batch's per-slice worst-case bound trace is monotone
    /// non-increasing and terminates at zero on a fault-free store —
    /// Theorem 1 survives any scheduling interleaving.
    #[test]
    fn bounds_are_monotone_under_any_schedule((data, query_batches, shape) in arb_instance(),
                                              workers in 1usize..5) {
        let strategy = WaveletStrategy::new(Wavelet::Haar);
        let store = MemoryStore::from_entries(strategy.transform_data(&data));
        let n_total = shape.len().max(2);
        let k = store.abs_sum();
        let batches: Vec<BatchQueries> = query_batches
            .iter()
            .map(|qs| BatchQueries::rewrite(&strategy, qs.clone(), &shape).unwrap())
            .collect();
        let requests: Vec<BatchRequest<'_>> =
            batches.iter().map(|b| BatchRequest::new(b, &Sse)).collect();
        let server =
            BatchServer::new(ServeConfig::new(n_total, k).workers(workers).slice_steps(2));
        for result in server.serve(&store, &requests) {
            let history = &result.bound_history;
            prop_assert!(!history.is_empty());
            prop_assert!(history.windows(2).all(|w| w[1] <= w[0]),
                "bound history not monotone: {history:?}");
            prop_assert_eq!(*history.last().unwrap(), 0.0);
        }
    }
}
