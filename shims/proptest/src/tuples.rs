//! Tuple strategies: a tuple of strategies generates a tuple of values.

use crate::{Strategy, TestRng};

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
