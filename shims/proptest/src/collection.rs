//! Collection strategies (`prop::collection::{vec, btree_map}`).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::{Strategy, TestRng};

/// A size specification: fixed, or uniform in a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with *up to* the drawn
/// number of entries (duplicate keys collapse, as upstream).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.draw(rng);
        let mut map = BTreeMap::new();
        for _ in 0..n {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}
