//! Shim exposing the `proptest` API surface used by this workspace.
//!
//! Semantics relative to upstream:
//!
//! * case generation is **deterministic**: the per-test seed is derived
//!   from the test's name (override with `PROPTEST_SEED`), so failures
//!   reproduce without a persistence file;
//! * there is **no shrinking** — a failing case reports its inputs via the
//!   assertion message and case index only;
//! * `prop_assume!` rejects the current case; rejected cases are retried
//!   with fresh draws, up to 10× the configured case count.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;
mod tuples;

/// The error type a generated property body returns.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case does not satisfy a `prop_assume!` precondition.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic 64-bit generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds decorrelate.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot draw below 0");
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)` with 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike upstream there is no shrinking, so a strategy
/// is just a function from a [`TestRng`] to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and runs a dependent strategy built
    /// from it.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Marker for types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` and friends).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Drives one property: draws cases, skips rejections, panics on failure.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: &'static str,
}

impl TestRunner {
    /// Builds a runner whose seed derives from the test name, or from
    /// `PROPTEST_SEED` when set.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .expect("PROPTEST_SEED must be an unsigned integer"),
            Err(_) => name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            }),
        };
        TestRunner {
            config,
            rng: TestRng::new(seed),
            name,
        }
    }

    /// Runs the property until `cases` accepted cases pass. Panics on the
    /// first failure, reporting the case index for reproduction.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = (self.config.cases as u64).saturating_mul(10).max(100);
        while accepted < self.config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "{}: too many rejected cases ({} accepted of {} wanted)",
                self.name,
                accepted,
                self.config.cases
            );
            match case(&mut self.rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "{} failed at case {} (attempt {}): {}",
                    self.name, accepted, attempts, msg
                ),
            }
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Mirror of upstream's `prelude::prop` module path
    /// (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                runner.run(|__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts inside a property body; failure fails the case (not the
/// process) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case unless `cond` holds; rejected cases are
/// redrawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRunner::new(ProptestConfig::with_cases(5), "x");
        let mut b = crate::TestRunner::new(ProptestConfig::with_cases(5), "x");
        let mut va = vec![];
        let mut vb = vec![];
        a.run(|rng| {
            va.push(rng.next_u64());
            Ok(())
        });
        b.run(|rng| {
            vb.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -1.0f64..1.0), c in 1u32..=4) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn collections(v in prop::collection::vec(0usize..5, 2..6),
                       m in prop::collection::btree_map(0usize..20, 0.0f64..1.0, 0..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(m.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_maps(x in prop_oneof![Just(1usize), (10usize..12).prop_map(|v| v)],
                          flag in any::<bool>()) {
            prop_assert!(x == 1 || (10..12).contains(&x));
            let _ = flag;
        }

        #[test]
        fn flat_map_dependent(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0usize..9, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
