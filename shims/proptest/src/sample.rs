//! Sampling strategies (`prop::sample::select`).

use crate::{Strategy, TestRng};

/// Uniform choice of one element from a fixed, non-empty list.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].clone()
    }
}
