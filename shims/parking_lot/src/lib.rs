//! Shim over `std::sync` exposing the `parking_lot` API surface used by
//! this workspace: non-poisoning `Mutex` and `RwLock` whose guards are
//! returned directly from `lock()`/`read()`/`write()`.

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning (parking_lot locks do
    /// not poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is not currently held, recovering from
    /// poisoning; `None` when another thread holds it.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_skips_a_held_mutex() {
        let m = Mutex::new(5);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(*m.try_lock().expect("free mutex must lock"), 5);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
