//! Shim over `std::thread::scope` exposing the `crossbeam::scope` API
//! surface used by this workspace.
//!
//! Difference from upstream: a panicking child thread propagates its panic
//! when the scope exits (via `std::thread::scope` semantics) instead of
//! being reported through the returned `Result`. Callers here `.expect()`
//! the result, so the observable behaviour — a panic — is the same.

/// A scope handle; closures passed to [`Scope::spawn`] receive it so they
/// can spawn nested scoped threads.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives this scope.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope in which borrowing, non-`'static` threads can be
/// spawned; all are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut data = [0u64; 8];
        super::scope(|scope| {
            for chunk in data.chunks_mut(2) {
                scope.spawn(move |_| {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v == 1));
    }
}
