//! Shim exposing the `bytes` API surface used by this workspace:
//! little-endian `f64` reads/writes over a growable byte buffer.

use std::ops::Deref;

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Reads the next 8 bytes as a little-endian `f64`, advancing the
    /// cursor. Panics if fewer than 8 bytes remain.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    fn get_f64_le(&mut self) -> f64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        f64::from_le_bytes(head.try_into().expect("split_at returned 8 bytes"))
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends `v` as 8 little-endian bytes.
    fn put_f64_le(&mut self, v: f64);
}

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_f64_le(&mut self, v: f64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_f64_le(1.5);
        buf.put_f64_le(-2.25);
        assert_eq!(buf.len(), 16);
        let mut slice = &buf[..];
        assert_eq!(slice.get_f64_le(), 1.5);
        assert_eq!(slice.get_f64_le(), -2.25);
        assert!(slice.is_empty());
    }
}
