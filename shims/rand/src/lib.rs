//! Shim exposing the `rand` API surface used by this workspace:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range`
//! over exclusive integer and float ranges.
//!
//! The generator is deterministic per seed (like upstream `SmallRng` with
//! `seed_from_u64`), but the streams differ from upstream — any test or
//! harness output keyed to specific random draws is seeded against *this*
//! implementation.

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a uniform value of type `T` from a range-like object.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant at test scales.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* core behind a
    /// splitmix64-seeded state).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step so nearby seeds give unrelated states.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let n = rng.gen_range(-8i64..-3);
            assert!((-8..-3).contains(&n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<usize> = (0..8).map(|_| a.gen_range(0usize..1_000_000)).collect();
        let vb: Vec<usize> = (0..8).map(|_| b.gen_range(0usize..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
