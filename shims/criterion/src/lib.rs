//! Shim exposing the `criterion` API surface used by this workspace's
//! benches.
//!
//! Two modes, selected from the process arguments the way upstream does:
//!
//! * **bench mode** (`--bench` present, i.e. `cargo bench`): each routine
//!   is warmed up, then timed over enough iterations to fill a small
//!   budget; mean ns/iter is printed;
//! * **test mode** (anything else, i.e. `cargo test` compiling the bench
//!   target with `harness = false`): each routine runs once so the bench
//!   code is exercised but stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness handed to each benchmark routine.
pub struct Bencher {
    bench_mode: bool,
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `routine`. In test mode the routine runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.bench_mode {
            black_box(routine());
            self.last_ns = 0.0;
            return;
        }
        // Warm up and estimate a single-iteration cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~50ms of measurement, between 1 and 10_000 iterations.
        let iters =
            (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            bench_mode: self.criterion.bench_mode,
            last_ns: 0.0,
        };
        routine(&mut b);
        self.criterion.report(&self.name, &id.0, b.last_ns);
        self
    }

    /// Benchmarks `routine` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            bench_mode: self.criterion.bench_mode,
            last_ns: 0.0,
        };
        routine(&mut b, input);
        self.criterion.report(&self.name, &id.0, b.last_ns);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name_owned = name.to_string();
        let mut g = self.benchmark_group(name_owned);
        g.bench_function(name, routine);
        g.finish();
        self
    }

    fn report(&self, group: &str, id: &str, ns: f64) {
        if self.bench_mode {
            println!("{group}/{id}: {ns:.0} ns/iter");
        }
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { bench_mode: false };
        let mut runs = 0;
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("one", |b| {
            b.iter(|| runs += 1);
        });
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_times_iterations() {
        let mut c = Criterion { bench_mode: true };
        let mut runs = 0u64;
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("n", 3), &3u64, |b, &n| {
            b.iter(|| {
                runs += n;
                black_box(runs)
            });
        });
        g.finish();
        assert!(runs >= 3, "routine must run at least once");
    }
}
